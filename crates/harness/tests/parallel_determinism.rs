//! Integration tests for the tentpole guarantees of the harness:
//!
//! 1. **Parallel = serial, byte for byte.** A plan run through the
//!    work-stealing pool yields `SimReport` JSON identical to the same
//!    cases run one at a time on one thread.
//! 2. **Panic isolation + resume.** An injected per-case panic is
//!    recorded as `failed` in the manifest while every other case
//!    completes; re-invoking with resume re-runs *only* the failed case.

use stashdir::{CoverageRatio, DirSpec, SystemConfig, Workload};
use stashdir_harness::artifact::{report_to_json, ArtifactStyle};
use stashdir_harness::runner::{execute_cases, PersistOptions};
use stashdir_harness::{run_cases, CaseStatus, ExperimentPlan, Params, RunManifest, RunOptions};
use std::path::PathBuf;

/// A 2 schemes x 2 workloads x 2 seeds plan on a small 4-core machine,
/// sized so the whole file runs in seconds.
fn small_plan() -> ExperimentPlan {
    ExperimentPlan::new("itest", SystemConfig::default().with_cores(4), 200)
        .dirs(vec![
            DirSpec::sparse(CoverageRatio::new(1, 4)),
            DirSpec::stash(CoverageRatio::new(1, 8)),
        ])
        .workloads(vec![Workload::Uniform, Workload::ProducerConsumer])
        .seeds(vec![7, 1234])
}

fn tmp_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("stashdir_itest_{tag}_{}", std::process::id()))
}

#[test]
fn parallel_pool_matches_serial_byte_for_byte() {
    let cases = small_plan().expand();
    assert_eq!(cases.len(), 8);

    let parallel = run_cases(
        &cases,
        &RunOptions {
            jobs: 4,
            ..Default::default()
        },
    );
    let serial = run_cases(
        &cases,
        &RunOptions {
            jobs: 1,
            ..Default::default()
        },
    );

    for ((spec, par), ser) in cases.iter().zip(&parallel).zip(&serial) {
        assert_eq!(par.status, CaseStatus::Completed, "{}", spec.id());
        assert_eq!(ser.status, CaseStatus::Completed, "{}", spec.id());
        let par_json = report_to_json(par.report.as_ref().unwrap()).render_pretty();
        let ser_json = report_to_json(ser.report.as_ref().unwrap()).render_pretty();
        assert_eq!(
            par_json,
            ser_json,
            "parallel and serial reports diverge for {}",
            spec.id()
        );
    }
}

#[test]
fn injected_panic_is_failed_in_manifest_and_resume_reruns_only_it() {
    let root = tmp_root("resume");
    std::fs::remove_dir_all(&root).ok();
    let cases = small_plan().expand();
    let victim = cases[3].id();
    let params = Params { ops: 200, seed: 7 };

    // First invocation: one case panics, the rest must complete.
    let first = execute_cases(
        &cases,
        "run",
        &root,
        vec!["itest".into()],
        params,
        &RunOptions {
            jobs: 2,
            inject_panic: Some(victim.clone()),
            ..Default::default()
        },
        PersistOptions {
            resume: false,
            style: ArtifactStyle::Pretty,
        },
    )
    .unwrap();
    assert_eq!(first.failed, 1);
    assert_eq!(first.ran, cases.len());
    assert_eq!(first.results.len(), cases.len() - 1);

    let manifest = RunManifest::load(&first.run_dir).expect("manifest written");
    for record in &manifest.cases {
        if record.id == victim {
            assert_eq!(record.status, CaseStatus::Failed);
            assert!(
                record.error.as_deref().unwrap().contains("injected fault"),
                "failed record carries the panic message"
            );
        } else {
            assert_eq!(record.status, CaseStatus::Completed, "{}", record.id);
        }
    }

    // Resume without the fault: only the failed case re-runs.
    let second = execute_cases(
        &cases,
        "run",
        &root,
        vec!["itest".into()],
        params,
        &RunOptions {
            jobs: 2,
            ..Default::default()
        },
        PersistOptions {
            resume: true,
            style: ArtifactStyle::Pretty,
        },
    )
    .unwrap();
    assert_eq!(second.resumed, cases.len() - 1, "completed cases skipped");
    assert_eq!(second.ran, 1, "only the failed case re-ran");
    assert_eq!(second.failed, 0);
    assert_eq!(second.results.len(), cases.len());

    let healed = RunManifest::load(&second.run_dir).unwrap();
    assert!(healed
        .cases
        .iter()
        .all(|c| c.status == CaseStatus::Completed));

    // The re-run case's artifact matches a from-scratch simulation.
    let fresh = run_cases(&[cases[3].clone()], &RunOptions::default());
    let fresh_json = report_to_json(fresh[0].report.as_ref().unwrap()).render_pretty();
    let resumed_json = report_to_json(&second.results[&victim]).render_pretty();
    assert_eq!(fresh_json, resumed_json);

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn resume_reruns_cases_whose_digest_changed() {
    let root = tmp_root("digest");
    std::fs::remove_dir_all(&root).ok();
    let params = Params { ops: 100, seed: 7 };
    let before = small_plan().expand();
    execute_cases(
        &before,
        "run",
        &root,
        vec![],
        params,
        &RunOptions::default(),
        PersistOptions {
            resume: false,
            style: ArtifactStyle::Pretty,
        },
    )
    .unwrap();

    // Same ids would collide only if the config digest matched; a changed
    // hidden knob must force a re-run even with the manifest present.
    let changed: Vec<_> = before
        .iter()
        .map(|c| {
            let mut spec = c.clone();
            spec.config.notify_clean_evictions = false;
            spec
        })
        .collect();
    let rep = execute_cases(
        &changed,
        "run",
        &root,
        vec![],
        params,
        &RunOptions::default(),
        PersistOptions {
            resume: true,
            style: ArtifactStyle::Pretty,
        },
    )
    .unwrap();
    assert_eq!(rep.resumed, 0, "changed configs must not resume");
    assert_eq!(rep.ran, changed.len());

    std::fs::remove_dir_all(&root).ok();
}
