//! Byte-identity regression for the struct-of-arrays sim-core rewrite.
//!
//! One representative case per directory backend (stash, sparse,
//! limited-ptr, DLS, opaque, full-map), captured from the sweep *before*
//! the SoA refactor (dense core/bank tables, message arena, batched
//! cycle stepping, interned witness counters). Re-running the cases must
//! reproduce both the case ids (the config digest covers the full
//! `Debug` rendering of the config) and the artifact bytes, so the
//! rewrite cannot silently drift event ordering, stats, or rendering.
//!
//! To regenerate after an *intentional* behavior change, run
//! `STASHDIR_REGEN_GOLDEN=1 cargo test -p stashdir-harness --test
//! golden_soa_regression` and commit the rewritten fixtures together
//! with the change that justifies them.

use std::path::Path;

use stashdir::{CoverageRatio, DirSpec, Workload};
use stashdir_harness::artifact::report_to_json;
use stashdir_harness::{machine_with, run_cases, CaseSpec, Params, RunOptions};

fn quiet() -> RunOptions {
    RunOptions {
        progress: false,
        ..RunOptions::default()
    }
}

const GOLDEN: [(&str, &str); 6] = [
    (
        "stash-1_8x8w-c16-data_parallel-o80-s11-5a780a3d",
        "stash-1_8x8w-c16-data_parallel-o80-s11.json",
    ),
    (
        "sparse-1_8x8w-c16-data_parallel-o80-s11-b265fdca",
        "sparse-1_8x8w-c16-data_parallel-o80-s11.json",
    ),
    (
        "limited-ptr4-1_8x8w-c16-data_parallel-o80-s11-6682c7af",
        "limited-1_8x8w-k4-c16-data_parallel-o80-s11.json",
    ),
    (
        "dls-c16-data_parallel-o80-s11-43586ee3",
        "dls-c16-data_parallel-o80-s11.json",
    ),
    (
        "opaque-1_8x8w-c16-data_parallel-o80-s11-f786f5ab",
        "opaque-1_8x8w-c16-data_parallel-o80-s11.json",
    ),
    (
        "fullmap-c16-data_parallel-o80-s11-d83499e3",
        "fullmap-c16-data_parallel-o80-s11.json",
    ),
];

fn golden_dirs() -> [DirSpec; 6] {
    let c = CoverageRatio::new(1, 8);
    [
        DirSpec::stash(c),
        DirSpec::sparse(c),
        DirSpec::limited_ptr(c, 4),
        DirSpec::Dls,
        DirSpec::opaque(c),
        DirSpec::FullMap,
    ]
}

fn fixture_dir() -> &'static Path {
    Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/golden_soa"
    ))
}

#[test]
fn per_backend_case_artifacts_stay_byte_identical() {
    let specs: Vec<CaseSpec> = golden_dirs()
        .into_iter()
        .map(|d| CaseSpec::new(machine_with(d), Workload::DataParallel, 80, 11))
        .collect();
    let regen = std::env::var_os("STASHDIR_REGEN_GOLDEN").is_some();
    if !regen {
        for (spec, (id, _)) in specs.iter().zip(GOLDEN) {
            assert_eq!(spec.id(), id, "case identity (config digest) drifted");
        }
    }
    let outcomes = run_cases(&specs, &quiet());
    for (outcome, (id, file)) in outcomes.into_iter().zip(GOLDEN) {
        let report = outcome.report.unwrap_or_else(|| panic!("{id} failed"));
        let rendered = report_to_json(&report).render_pretty();
        let path = fixture_dir().join(file);
        if regen {
            eprintln!("regen {} (id {})", path.display(), outcome.spec.id());
            std::fs::write(&path, &rendered).expect("write fixture");
            continue;
        }
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()));
        assert_eq!(
            rendered, golden,
            "artifact for {id} is no longer byte-identical"
        );
    }
}

#[test]
fn params_default_matches_sweep_defaults() {
    // The fixtures above intentionally use non-default ops/seed so they
    // exercise a distinct point; the sweep byte-identity contract itself
    // is anchored on the defaults, which must not drift silently.
    let p = Params::default();
    assert_eq!((p.ops, p.seed), (10_000, 7));
}
