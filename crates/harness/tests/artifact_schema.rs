//! Golden-artifact schema pinning for the interned `StatSink`.
//!
//! `tests/fixtures/pre_pr_case_artifact.json` is a real case artifact
//! captured from the sweep *before* the sink was reworked from a
//! string-keyed `BTreeMap` to the `StatId`-interned table. Loading it
//! through today's deserializer and re-rendering it must reproduce the
//! file byte for byte: the interning is an internal representation
//! change, and any drift in key order, float formatting, or section
//! layout would silently invalidate every committed results table.

use stashdir::common::json::object_from_map;
use stashdir::common::json::Value;
use stashdir::StatSink;
use stashdir_harness::artifact::{report_from_json, report_to_json};

const GOLDEN: &str = include_str!("fixtures/pre_pr_case_artifact.json");

#[test]
fn pre_pr_artifact_roundtrips_byte_identical() {
    let value = Value::parse(GOLDEN).expect("golden artifact parses");
    let report = report_from_json(&value).expect("golden artifact deserializes");
    let rendered = report_to_json(&report).render_pretty();
    assert_eq!(
        rendered, GOLDEN,
        "interned sink must re-render the pre-PR artifact byte-for-byte"
    );
}

#[test]
fn sharded_sink_renders_like_a_single_sink() {
    // Interleave the same bump stream into one sink and into three
    // shards merged in a different registration order: the exported
    // JSON (the only externally visible face of the sink) must match.
    let keys = ["noc.flits", "l1.hits", "dir.lookups", "l1.misses"];
    let mut single = StatSink::new();
    let mut shards = [StatSink::new(), StatSink::new(), StatSink::new()];
    for i in 0..100usize {
        let key = keys[i % keys.len()];
        let sid = single.register(key);
        single.bump(sid, i as f64);
        let shard = &mut shards[i % 3];
        let id = shard.register(key);
        shard.bump(id, i as f64);
    }
    let mut merged = StatSink::new();
    // Merge in reverse so interning order differs from `single`.
    for shard in shards.iter().rev() {
        merged.merge(shard);
    }
    let single_json = object_from_map(&single.iter().map(|(k, v)| (k.to_string(), v)).collect());
    let merged_json = object_from_map(&merged.iter().map(|(k, v)| (k.to_string(), v)).collect());
    assert_eq!(single_json.render_pretty(), merged_json.render_pretty());
    assert_eq!(single, merged);
}
