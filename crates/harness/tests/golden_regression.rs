//! Byte-identity regression for the backend-subsystem extension.
//!
//! The fixtures under `tests/fixtures/golden_cases/` are real case
//! artifacts captured from the sweep *before* the directory-backend
//! registry (DLS, opaque-distributed, `limited-ptr` as a `DirSpec`
//! variant) landed. Re-running those cases today must reproduce both the
//! case ids (the config digest covers the full `Debug` rendering of the
//! config, so any accidental change to existing variants shows up as an
//! id drift) and the artifact bytes. Likewise the E15 limited-pointer
//! table, folded from its standalone binary into the registry, must
//! still emit the binary's CSV byte for byte.

use stashdir::{CoverageRatio, DirSpec, Workload};
use stashdir_harness::artifact::report_to_json;
use stashdir_harness::{machine_with, run_cases, CaseSpec, Params, ResultSet, RunOptions};

fn quiet() -> RunOptions {
    RunOptions {
        progress: false,
        ..RunOptions::default()
    }
}

const GOLDEN: [(&str, &str); 4] = [
    (
        "fullmap-c16-canneal-o60-s7-d133354d",
        include_str!("fixtures/golden_cases/fullmap-c16-canneal-o60-s7-d133354d.json"),
    ),
    (
        "sparse-1_8x8w-c16-canneal-o60-s7-6d791403",
        include_str!("fixtures/golden_cases/sparse-1_8x8w-c16-canneal-o60-s7-6d791403.json"),
    ),
    (
        "stash-1_8x8w-c16-canneal-o60-s7-681095d4",
        include_str!("fixtures/golden_cases/stash-1_8x8w-c16-canneal-o60-s7-681095d4.json"),
    ),
    (
        "cuckoo-1_8-c16-canneal-o60-s7-c9877974",
        include_str!("fixtures/golden_cases/cuckoo-1_8-c16-canneal-o60-s7-c9877974.json"),
    ),
];

fn golden_dirs() -> [DirSpec; 4] {
    let c = CoverageRatio::new(1, 8);
    [
        DirSpec::FullMap,
        DirSpec::sparse(c),
        DirSpec::stash(c),
        DirSpec::Cuckoo { coverage: c },
    ]
}

#[test]
fn pre_extension_case_artifacts_stay_byte_identical() {
    let specs: Vec<CaseSpec> = golden_dirs()
        .into_iter()
        .map(|d| CaseSpec::new(machine_with(d), Workload::Canneal, 60, 7))
        .collect();
    for (spec, (id, _)) in specs.iter().zip(GOLDEN) {
        assert_eq!(spec.id(), id, "case identity (config digest) drifted");
    }
    let outcomes = run_cases(&specs, &quiet());
    for (outcome, (id, golden)) in outcomes.into_iter().zip(GOLDEN) {
        let report = outcome.report.unwrap_or_else(|| panic!("{id} failed"));
        assert_eq!(
            report_to_json(&report).render_pretty(),
            golden,
            "artifact for {id} is no longer byte-identical"
        );
    }
}

#[test]
fn e15_registry_experiment_matches_the_standalone_binary_csv() {
    let exp = stashdir_harness::experiments::find("limited_ptr").expect("limited_ptr registered");
    let p = Params { ops: 80, seed: 7 };
    let results: ResultSet = run_cases(&exp.cases(p), &quiet())
        .into_iter()
        .filter_map(|o| o.report.map(|r| (o.spec.id(), r)))
        .collect();
    let assembled = exp.assemble(p, &results);
    assert_eq!(
        assembled.table.to_csv(),
        include_str!("fixtures/e15_limited_ptr_ops80.csv"),
        "folded E15 must reproduce the standalone binary's CSV byte for byte"
    );
}
