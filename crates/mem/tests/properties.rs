//! Property tests of the set-associative array against a reference
//! model: bounded associativity is the only way blocks may disappear,
//! and the LRU policy's stack property holds.

use proptest::prelude::*;
use stashdir_common::BlockAddr;
use stashdir_mem::{ReplKind, SetAssoc};
use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone)]
enum Op {
    Access(u64), // insert if absent (touch if present)
    Remove(u64),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        4 => (0u64..64).prop_map(Op::Access),
        1 => (0u64..64).prop_map(Op::Remove),
    ];
    prop::collection::vec(op, 0..300)
}

proptest! {
    /// Under any access/remove sequence and any policy:
    /// * a block disappears only by removal or by an eviction from its
    ///   own set,
    /// * per-set occupancy never exceeds associativity,
    /// * the array's contents equal the reference model's.
    #[test]
    fn set_assoc_accounts_for_every_block(
        ops in arb_ops(),
        repl in prop::sample::select(vec![
            ReplKind::Lru,
            ReplKind::Fifo,
            ReplKind::Random,
            ReplKind::Nru,
            ReplKind::Srrip,
            ReplKind::TreePlru,
        ]),
        sets in prop::sample::select(vec![1usize, 2, 4]),
        ways in 1usize..4,
    ) {
        let mut array: SetAssoc<u64> = SetAssoc::new(sets, ways, repl, 5);
        let mut model: HashSet<u64> = HashSet::new();
        for op in ops {
            match op {
                Op::Access(b) => {
                    let block = BlockAddr::new(b);
                    if array.contains(block) {
                        array.touch(block);
                    } else if let Some((victim, _)) = array.insert(block, b) {
                        prop_assert_eq!(
                            array.set_index(victim), array.set_index(block),
                            "victims come from the target set"
                        );
                        prop_assert!(model.remove(&victim.get()), "evicted unknown block");
                        model.insert(b);
                    } else {
                        model.insert(b);
                    }
                }
                Op::Remove(b) => {
                    let got = array.remove(BlockAddr::new(b)).is_some();
                    prop_assert_eq!(got, model.remove(&b));
                }
            }
            prop_assert_eq!(array.occupancy(), model.len());
            // Per-set occupancy bound.
            let mut per_set: HashMap<usize, usize> = HashMap::new();
            for (block, _) in array.iter() {
                *per_set.entry(array.set_index(block)).or_default() += 1;
                prop_assert!(model.contains(&block.get()));
            }
            for (&set, &count) in &per_set {
                prop_assert!(count <= ways, "set {set} holds {count} > {ways}");
            }
        }
    }

    /// The LRU stack property: after touching a block, it survives the
    /// next `ways - 1` distinct insertions into its set.
    #[test]
    fn lru_protects_recently_used(ways in 2usize..6, salt in 0u64..100) {
        let mut array: SetAssoc<()> = SetAssoc::new(1, ways, ReplKind::Lru, salt);
        for i in 0..ways as u64 {
            array.insert(BlockAddr::new(i), ());
        }
        let protected = BlockAddr::new(0);
        array.touch(protected);
        for i in 0..ways as u64 - 1 {
            array.insert(BlockAddr::new(100 + salt + i), ());
            prop_assert!(
                array.contains(protected),
                "touched block evicted after {i} fills"
            );
        }
    }

    /// `victim_for` is a faithful prediction: for deterministic policies
    /// the immediately following insert evicts exactly that block.
    #[test]
    fn victim_prediction_is_exact(
        blocks in prop::collection::hash_set(0u64..32, 4..8),
        repl in prop::sample::select(vec![ReplKind::Lru, ReplKind::Fifo]),
    ) {
        let mut array: SetAssoc<()> = SetAssoc::new(1, 4, repl, 0);
        for &b in blocks.iter().take(4) {
            array.insert(BlockAddr::new(b), ());
        }
        let newcomer = BlockAddr::new(1000);
        if let Some(victim) = array.victim_for(newcomer) {
            let evicted = array.insert(newcomer, ()).map(|(b, _)| b);
            prop_assert_eq!(evicted, Some(victim));
        }
    }
}
