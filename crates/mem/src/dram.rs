//! A first-order DRAM timing model.
//!
//! The paper's evaluation does not hinge on detailed DRAM behavior, so the
//! model is deliberately simple: a fixed access latency plus a per-channel
//! bandwidth constraint. Each access occupies its (address-interleaved)
//! channel for a fixed service time; accesses queue FIFO behind earlier
//! ones on the same channel.

use serde::{Deserialize, Serialize};
use stashdir_common::{BlockAddr, Counter, Cycle, StatSink};

/// Configuration for [`DramModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Latency from request arrival to data return, unloaded (cycles).
    pub latency: u64,
    /// Number of independent channels (address-interleaved by block).
    pub channels: usize,
    /// Channel occupancy per access (cycles); `0` models infinite bandwidth.
    pub service_time: u64,
}

impl Default for DramConfig {
    /// 160-cycle latency, 4 channels, 16-cycle service time — the
    /// reconstructed 16-core model of the paper.
    fn default() -> Self {
        DramConfig {
            latency: 160,
            channels: 4,
            service_time: 16,
        }
    }
}

/// Tracks channel occupancy and answers "when will this access complete?".
///
/// # Examples
///
/// ```
/// use stashdir_common::{BlockAddr, Cycle};
/// use stashdir_mem::dram::{DramConfig, DramModel};
///
/// let mut dram = DramModel::new(DramConfig { latency: 100, channels: 1, service_time: 10 });
/// let b = BlockAddr::new(0);
/// let first = dram.access(b, Cycle::ZERO);
/// let second = dram.access(b, Cycle::ZERO); // queued behind the first
/// assert_eq!(first.get(), 100);
/// assert_eq!(second.get(), 110);
/// ```
#[derive(Debug, Clone)]
pub struct DramModel {
    config: DramConfig,
    busy_until: Vec<Cycle>,
    /// Total accesses served.
    pub accesses: Counter,
    /// Cycles spent queued behind earlier accesses, summed over accesses.
    pub queue_cycles: Counter,
}

impl DramModel {
    /// Creates a model from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn new(config: DramConfig) -> Self {
        assert!(config.channels > 0, "need at least one DRAM channel");
        DramModel {
            busy_until: vec![Cycle::ZERO; config.channels],
            config,
            accesses: Counter::new(),
            queue_cycles: Counter::new(),
        }
    }

    /// The configuration the model was built with.
    pub fn config(&self) -> DramConfig {
        self.config
    }

    /// Issues an access to `block` at time `now`; returns the completion
    /// time (data available).
    pub fn access(&mut self, block: BlockAddr, now: Cycle) -> Cycle {
        let ch = (block.get() % self.config.channels as u64) as usize;
        // lint: allow(indexing) — `ch` is `% channels`, always in bounds.
        let start = now.max(self.busy_until[ch]);
        self.queue_cycles.add(start - now);
        // lint: allow(indexing) — `ch` is `% channels`, always in bounds.
        self.busy_until[ch] = start + self.config.service_time;
        self.accesses.incr();
        start + self.config.latency
    }

    /// Exports counters under `prefix.` into `sink`.
    pub fn export(&self, prefix: &str, sink: &mut StatSink) {
        sink.put_counter(format!("{prefix}.accesses"), self.accesses);
        sink.put_counter(format!("{prefix}.queue_cycles"), self.queue_cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(latency: u64, channels: usize, service: u64) -> DramModel {
        DramModel::new(DramConfig {
            latency,
            channels,
            service_time: service,
        })
    }

    #[test]
    fn unloaded_access_takes_latency() {
        let mut d = model(100, 2, 10);
        assert_eq!(d.access(BlockAddr::new(0), Cycle::new(50)).get(), 150);
    }

    #[test]
    fn same_channel_serializes() {
        let mut d = model(100, 1, 10);
        let t1 = d.access(BlockAddr::new(0), Cycle::ZERO);
        let t2 = d.access(BlockAddr::new(1), Cycle::ZERO);
        assert_eq!(t1.get(), 100);
        assert_eq!(t2.get(), 110);
        assert_eq!(d.queue_cycles.get(), 10);
    }

    #[test]
    fn different_channels_proceed_in_parallel() {
        let mut d = model(100, 2, 10);
        let t1 = d.access(BlockAddr::new(0), Cycle::ZERO);
        let t2 = d.access(BlockAddr::new(1), Cycle::ZERO);
        assert_eq!(t1.get(), 100);
        assert_eq!(t2.get(), 100);
        assert_eq!(d.queue_cycles.get(), 0);
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let mut d = model(100, 1, 10);
        d.access(BlockAddr::new(0), Cycle::ZERO);
        let t = d.access(BlockAddr::new(1), Cycle::new(1000));
        assert_eq!(t.get(), 1100);
    }

    #[test]
    fn zero_service_time_is_infinite_bandwidth() {
        let mut d = model(100, 1, 0);
        let t1 = d.access(BlockAddr::new(0), Cycle::ZERO);
        let t2 = d.access(BlockAddr::new(1), Cycle::ZERO);
        assert_eq!(t1, t2);
    }

    #[test]
    fn counters_and_export() {
        let mut d = model(100, 1, 10);
        d.access(BlockAddr::new(0), Cycle::ZERO);
        d.access(BlockAddr::new(1), Cycle::ZERO);
        let mut sink = StatSink::new();
        d.export("dram", &mut sink);
        assert_eq!(sink.get("dram.accesses"), Some(2.0));
        assert_eq!(sink.get("dram.queue_cycles"), Some(10.0));
    }

    #[test]
    #[should_panic(expected = "at least one DRAM channel")]
    fn zero_channels_panics() {
        let _ = model(100, 0, 10);
    }
}
