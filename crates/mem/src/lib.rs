//! Cache and memory substrates for the Stash Directory reproduction.
//!
//! The paper's simulator needs set-associative storage in four places: the
//! private L1s, the private L2s, the shared LLC banks, and the sparse
//! directory slices themselves. This crate provides one generic,
//! well-tested building block for all of them — [`SetAssoc`] — plus the
//! replacement policies it is parameterized by and a first-order DRAM
//! timing model.
//!
//! # Examples
//!
//! ```
//! use stashdir_common::BlockAddr;
//! use stashdir_mem::{ReplKind, SetAssoc};
//!
//! // A 4-set, 2-way array holding `char` payloads.
//! let mut array: SetAssoc<char> = SetAssoc::new(4, 2, ReplKind::Lru, 1);
//! assert!(array.insert(BlockAddr::new(0), 'a').is_none());
//! assert!(array.insert(BlockAddr::new(4), 'b').is_none()); // same set, 2nd way
//! // Third block in set 0 evicts the LRU entry ('a').
//! let victim = array.insert(BlockAddr::new(8), 'c').unwrap();
//! assert_eq!(victim, (BlockAddr::new(0), 'a'));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod dram;
pub mod replacement;
pub mod set_assoc;

pub use cache::{CacheConfig, CacheStats};
pub use dram::{DramConfig, DramModel};
pub use replacement::{ReplKind, ReplacementPolicy};
pub use set_assoc::SetAssoc;
