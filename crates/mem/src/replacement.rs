//! Replacement policies for set-associative structures.
//!
//! A policy instance manages the ways of **one** set. [`SetAssoc`] keeps
//! one instance per set. Policies see three events: a fill into a way, a
//! hit on a way, and a victim request. Invalid ways are always preferred
//! as victims, ahead of whatever the policy would choose.
//!
//! [`SetAssoc`]: crate::SetAssoc

// lint: allow-file(indexing) — every index is a way number bounded by the
// per-set vectors sized at construction; `valid` always has `ways` slots.

use serde::{Deserialize, Serialize};
use stashdir_common::DetRng;
use std::fmt;

/// The replacement decision logic for one cache set.
///
/// Implementations must be deterministic given the same event sequence and
/// the same RNG stream.
pub trait ReplacementPolicy: fmt::Debug {
    /// Called when `way` is filled with a new block.
    fn on_fill(&mut self, way: usize);

    /// Called when `way` hits.
    fn on_hit(&mut self, way: usize);

    /// Chooses the way to evict among the valid ways.
    ///
    /// `valid[w]` tells whether way `w` currently holds a block. The caller
    /// guarantees at least one way is valid; callers prefer invalid ways
    /// themselves, so policies may assume the set is full in practice but
    /// must still return a *valid* way if some are invalid.
    fn victim(&mut self, valid: &[bool], rng: &mut DetRng) -> usize;
}

/// Selects which [`ReplacementPolicy`] a structure uses.
///
/// # Examples
///
/// ```
/// use stashdir_mem::ReplKind;
/// let policy = ReplKind::Lru.build(8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ReplKind {
    /// Least-recently-used, exact stack order.
    #[default]
    Lru,
    /// First-in-first-out (fill order, hits do not promote).
    Fifo,
    /// Uniform random among valid ways.
    Random,
    /// Not-recently-used: one reference bit per way, cleared in bulk.
    Nru,
    /// Static re-reference interval prediction with 2-bit RRPV counters.
    Srrip,
    /// Tree pseudo-LRU (binary decision tree).
    TreePlru,
}

impl ReplKind {
    /// Instantiates the policy for a set with `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn build(self, ways: usize) -> Box<dyn ReplacementPolicy> {
        assert!(ways > 0, "a set needs at least one way");
        match self {
            ReplKind::Lru => Box::new(Lru::new(ways)),
            ReplKind::Fifo => Box::new(Fifo::new(ways)),
            ReplKind::Random => Box::new(Random { ways }),
            ReplKind::Nru => Box::new(Nru::new(ways)),
            ReplKind::Srrip => Box::new(Srrip::new(ways)),
            ReplKind::TreePlru => Box::new(TreePlru::new(ways)),
        }
    }
}

impl fmt::Display for ReplKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ReplKind::Lru => "lru",
            ReplKind::Fifo => "fifo",
            ReplKind::Random => "random",
            ReplKind::Nru => "nru",
            ReplKind::Srrip => "srrip",
            ReplKind::TreePlru => "tree-plru",
        };
        f.write_str(name)
    }
}

/// Exact LRU: a recency stack of way indices, most recent at the back.
#[derive(Debug, Clone)]
struct Lru {
    // stack[0] is least recently used.
    stack: Vec<usize>,
}

impl Lru {
    fn new(ways: usize) -> Self {
        Lru {
            stack: (0..ways).collect(),
        }
    }

    fn promote(&mut self, way: usize) {
        debug_assert!(self.stack.contains(&way), "way tracked by LRU stack");
        self.stack.retain(|&w| w != way);
        self.stack.push(way);
    }
}

impl ReplacementPolicy for Lru {
    fn on_fill(&mut self, way: usize) {
        self.promote(way);
    }

    fn on_hit(&mut self, way: usize) {
        self.promote(way);
    }

    fn victim(&mut self, valid: &[bool], _rng: &mut DetRng) -> usize {
        debug_assert!(valid.contains(&true), "victim() needs a valid way");
        self.stack.iter().copied().find(|&w| valid[w]).unwrap_or(0)
    }
}

/// FIFO: eviction in fill order; hits do not refresh.
#[derive(Debug, Clone)]
struct Fifo {
    queue: Vec<usize>,
}

impl Fifo {
    fn new(ways: usize) -> Self {
        Fifo {
            queue: (0..ways).collect(),
        }
    }
}

impl ReplacementPolicy for Fifo {
    fn on_fill(&mut self, way: usize) {
        debug_assert!(self.queue.contains(&way), "way tracked by FIFO queue");
        self.queue.retain(|&w| w != way);
        self.queue.push(way);
    }

    fn on_hit(&mut self, _way: usize) {}

    fn victim(&mut self, valid: &[bool], _rng: &mut DetRng) -> usize {
        debug_assert!(valid.contains(&true), "victim() needs a valid way");
        self.queue.iter().copied().find(|&w| valid[w]).unwrap_or(0)
    }
}

/// Uniform random among valid ways.
#[derive(Debug, Clone)]
struct Random {
    ways: usize,
}

impl ReplacementPolicy for Random {
    fn on_fill(&mut self, _way: usize) {}

    fn on_hit(&mut self, _way: usize) {}

    fn victim(&mut self, valid: &[bool], rng: &mut DetRng) -> usize {
        let candidates: Vec<usize> = (0..self.ways).filter(|&w| valid[w]).collect();
        *rng.pick(&candidates)
    }
}

/// NRU: one reference bit per way; victim is the first valid way with a
/// clear bit, clearing all bits when every valid way is referenced.
#[derive(Debug, Clone)]
struct Nru {
    referenced: Vec<bool>,
}

impl Nru {
    fn new(ways: usize) -> Self {
        Nru {
            referenced: vec![false; ways],
        }
    }
}

impl ReplacementPolicy for Nru {
    fn on_fill(&mut self, way: usize) {
        self.referenced[way] = true;
    }

    fn on_hit(&mut self, way: usize) {
        self.referenced[way] = true;
    }

    fn victim(&mut self, valid: &[bool], _rng: &mut DetRng) -> usize {
        if let Some(w) = (0..self.referenced.len()).find(|&w| valid[w] && !self.referenced[w]) {
            return w;
        }
        // Everyone referenced: clear and take the first valid way.
        debug_assert!(valid.contains(&true), "victim() needs a valid way");
        self.referenced.iter_mut().for_each(|r| *r = false);
        (0..self.referenced.len()).find(|&w| valid[w]).unwrap_or(0)
    }
}

const RRPV_MAX: u8 = 3; // 2-bit counters
const RRPV_INSERT: u8 = 2; // "long" re-reference prediction on insert

/// SRRIP-HP with 2-bit re-reference prediction values.
#[derive(Debug, Clone)]
struct Srrip {
    rrpv: Vec<u8>,
}

impl Srrip {
    fn new(ways: usize) -> Self {
        Srrip {
            rrpv: vec![RRPV_MAX; ways],
        }
    }
}

impl ReplacementPolicy for Srrip {
    fn on_fill(&mut self, way: usize) {
        self.rrpv[way] = RRPV_INSERT;
    }

    fn on_hit(&mut self, way: usize) {
        self.rrpv[way] = 0;
    }

    fn victim(&mut self, valid: &[bool], _rng: &mut DetRng) -> usize {
        loop {
            if let Some(w) = (0..self.rrpv.len()).find(|&w| valid[w] && self.rrpv[w] == RRPV_MAX) {
                return w;
            }
            for (r, &v) in self.rrpv.iter_mut().zip(valid) {
                if v {
                    *r = (*r + 1).min(RRPV_MAX);
                }
            }
        }
    }
}

/// Tree pseudo-LRU over the next power of two of `ways`.
#[derive(Debug, Clone)]
struct TreePlru {
    ways: usize,
    // Bits of a complete binary tree; bit=false means "LRU side is left".
    tree: Vec<bool>,
    leaves: usize,
}

impl TreePlru {
    fn new(ways: usize) -> Self {
        let leaves = ways.next_power_of_two();
        TreePlru {
            ways,
            tree: vec![false; leaves.max(2) - 1],
            leaves,
        }
    }

    /// Flips the path bits so they point away from `way`.
    fn touch(&mut self, way: usize) {
        let mut node = 0;
        let mut lo = 0;
        let mut size = self.leaves;
        while size > 1 {
            let half = size / 2;
            let go_right = way >= lo + half;
            // Point the bit at the *other* half (the LRU side).
            self.tree[node] = !go_right;
            node = 2 * node + if go_right { 2 } else { 1 };
            if go_right {
                lo += half;
            }
            size = half;
        }
    }

    fn follow(&self) -> usize {
        let mut node = 0;
        let mut lo = 0;
        let mut size = self.leaves;
        while size > 1 {
            let half = size / 2;
            let go_right = self.tree[node];
            node = 2 * node + if go_right { 2 } else { 1 };
            if go_right {
                lo += half;
            }
            size = half;
        }
        lo
    }
}

impl ReplacementPolicy for TreePlru {
    fn on_fill(&mut self, way: usize) {
        self.touch(way);
    }

    fn on_hit(&mut self, way: usize) {
        self.touch(way);
    }

    fn victim(&mut self, valid: &[bool], _rng: &mut DetRng) -> usize {
        let chosen = self.follow();
        if chosen < self.ways && valid[chosen] {
            return chosen;
        }
        // Padding leaf (non-power-of-two ways) or invalid way: fall back to
        // the first valid way, preserving pseudo-LRU's O(1) spirit.
        debug_assert!(valid.contains(&true), "victim() needs a valid way");
        (0..self.ways).find(|&w| valid[w]).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::seed_from(99)
    }

    fn all_valid(n: usize) -> Vec<bool> {
        vec![true; n]
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = ReplKind::Lru.build(4);
        for w in 0..4 {
            p.on_fill(w);
        }
        p.on_hit(0); // order now 1,2,3,0
        assert_eq!(p.victim(&all_valid(4), &mut rng()), 1);
        p.on_hit(1);
        assert_eq!(p.victim(&all_valid(4), &mut rng()), 2);
    }

    #[test]
    fn lru_skips_invalid_ways() {
        let mut p = ReplKind::Lru.build(4);
        for w in 0..4 {
            p.on_fill(w);
        }
        let valid = vec![false, false, true, true];
        assert_eq!(p.victim(&valid, &mut rng()), 2);
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut p = ReplKind::Fifo.build(3);
        for w in 0..3 {
            p.on_fill(w);
        }
        p.on_hit(0);
        p.on_hit(0);
        assert_eq!(
            p.victim(&all_valid(3), &mut rng()),
            0,
            "hits do not refresh"
        );
        p.on_fill(0); // refill moves 0 to the back
        assert_eq!(p.victim(&all_valid(3), &mut rng()), 1);
    }

    #[test]
    fn random_only_picks_valid() {
        let mut p = ReplKind::Random.build(8);
        let mut r = rng();
        let valid = vec![false, true, false, true, false, false, false, true];
        for _ in 0..100 {
            let v = p.victim(&valid, &mut r);
            assert!(valid[v]);
        }
    }

    #[test]
    fn nru_prefers_unreferenced_then_resets() {
        let mut p = ReplKind::Nru.build(4);
        p.on_fill(0);
        p.on_fill(1);
        p.on_fill(2);
        // way 3 never filled/referenced in NRU terms.
        assert_eq!(p.victim(&all_valid(4), &mut rng()), 3);
        p.on_hit(3);
        // Now all referenced: reset happens and the first valid way wins.
        assert_eq!(p.victim(&all_valid(4), &mut rng()), 0);
    }

    #[test]
    fn srrip_hits_protect_lines() {
        let mut p = ReplKind::Srrip.build(2);
        p.on_fill(0);
        p.on_fill(1);
        p.on_hit(0); // rrpv(0)=0, rrpv(1)=2
        assert_eq!(p.victim(&all_valid(2), &mut rng()), 1);
    }

    #[test]
    fn srrip_ages_until_a_victim_exists() {
        let mut p = ReplKind::Srrip.build(2);
        p.on_fill(0);
        p.on_fill(1);
        p.on_hit(0);
        p.on_hit(1); // both rrpv 0; aging loop must terminate
        let v = p.victim(&all_valid(2), &mut rng());
        assert!(v < 2);
    }

    #[test]
    fn tree_plru_points_away_from_recent() {
        let mut p = ReplKind::TreePlru.build(4);
        for w in 0..4 {
            p.on_fill(w);
        }
        // Most recent fill was way 3 (right subtree); victim must be on the
        // left subtree.
        let v = p.victim(&all_valid(4), &mut rng());
        assert!(v < 2, "victim {v} should be in the left half");
    }

    #[test]
    fn tree_plru_handles_non_power_of_two() {
        let mut p = ReplKind::TreePlru.build(3);
        for w in 0..3 {
            p.on_fill(w);
        }
        for _ in 0..10 {
            let v = p.victim(&all_valid(3), &mut rng());
            assert!(v < 3);
            p.on_fill(v);
        }
    }

    #[test]
    fn every_policy_round_trips_under_churn() {
        let mut r = rng();
        for kind in [
            ReplKind::Lru,
            ReplKind::Fifo,
            ReplKind::Random,
            ReplKind::Nru,
            ReplKind::Srrip,
            ReplKind::TreePlru,
        ] {
            let mut p = kind.build(8);
            let valid = all_valid(8);
            for i in 0..1000 {
                match i % 3 {
                    0 => p.on_fill(i % 8),
                    1 => p.on_hit((i * 5) % 8),
                    _ => {
                        let v = p.victim(&valid, &mut r);
                        assert!(v < 8, "{kind}: victim out of range");
                        p.on_fill(v);
                    }
                }
            }
        }
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(ReplKind::Lru.to_string(), "lru");
        assert_eq!(ReplKind::TreePlru.to_string(), "tree-plru");
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_panics() {
        let _ = ReplKind::Lru.build(0);
    }
}
