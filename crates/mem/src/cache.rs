//! Cache geometry configuration and hit/miss accounting.

use crate::replacement::ReplKind;
use serde::{Deserialize, Serialize};
use stashdir_common::{Counter, StatSink};
use std::fmt;

/// Geometry and timing of one cache level.
///
/// # Examples
///
/// ```
/// use stashdir_mem::{CacheConfig, ReplKind};
/// let l1 = CacheConfig::new(32 * 1024, 4, 64, 1, ReplKind::Lru);
/// assert_eq!(l1.num_sets(), 128);
/// assert_eq!(l1.num_blocks(), 512);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    size_bytes: u64,
    assoc: usize,
    block_bytes: u64,
    /// Access latency in cycles (tag + data).
    pub latency: u64,
    /// Replacement policy.
    pub repl: ReplKind,
}

impl CacheConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent: sizes not powers of two,
    /// zero associativity, or a size that does not divide into whole sets.
    pub fn new(
        size_bytes: u64,
        assoc: usize,
        block_bytes: u64,
        latency: u64,
        repl: ReplKind,
    ) -> Self {
        assert!(assoc > 0, "associativity must be positive");
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        assert!(
            size_bytes.is_multiple_of(block_bytes * assoc as u64),
            "size {size_bytes} does not divide into sets of {assoc} x {block_bytes}B"
        );
        let cfg = CacheConfig {
            size_bytes,
            assoc,
            block_bytes,
            latency,
            repl,
        };
        assert!(
            (cfg.num_sets() as u64).is_power_of_two(),
            "number of sets ({}) must be a power of two",
            cfg.num_sets()
        );
        cfg
    }

    /// Total capacity in bytes.
    pub const fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Associativity (ways per set).
    pub const fn assoc(&self) -> usize {
        self.assoc
    }

    /// Block size in bytes.
    pub const fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Number of sets.
    pub const fn num_sets(&self) -> usize {
        (self.size_bytes / (self.block_bytes * self.assoc as u64)) as usize
    }

    /// Total capacity in blocks.
    pub const fn num_blocks(&self) -> usize {
        (self.size_bytes / self.block_bytes) as usize
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}KiB {}-way {}B-block {}cyc {}",
            self.size_bytes / 1024,
            self.assoc,
            self.block_bytes,
            self.latency,
            self.repl
        )
    }
}

/// Hit/miss/eviction accounting for one cache.
///
/// # Examples
///
/// ```
/// use stashdir_mem::CacheStats;
/// let mut s = CacheStats::default();
/// s.hits.incr();
/// s.misses.incr();
/// assert_eq!(s.accesses(), 2);
/// assert_eq!(s.miss_rate(), 0.5);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Demand accesses that hit.
    pub hits: Counter,
    /// Demand accesses that missed.
    pub misses: Counter,
    /// Capacity/conflict evictions of valid blocks.
    pub evictions: Counter,
    /// Evictions of dirty blocks (writebacks).
    pub writebacks: Counter,
    /// Blocks invalidated by coherence actions (directory evictions,
    /// exclusive requests by other cores, LLC recalls).
    pub coherence_invalidations: Counter,
}

impl CacheStats {
    /// Total demand accesses.
    pub fn accesses(&self) -> u64 {
        self.hits.get() + self.misses.get()
    }

    /// Fraction of accesses that missed (0 when there were no accesses).
    pub fn miss_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses.get() as f64 / total as f64
        }
    }

    /// Exports the counters under `prefix.` into `sink`.
    pub fn export(&self, prefix: &str, sink: &mut StatSink) {
        sink.put_counter(format!("{prefix}.hits"), self.hits);
        sink.put_counter(format!("{prefix}.misses"), self.misses);
        sink.put_counter(format!("{prefix}.evictions"), self.evictions);
        sink.put_counter(format!("{prefix}.writebacks"), self.writebacks);
        sink.put_counter(
            format!("{prefix}.coherence_invalidations"),
            self.coherence_invalidations,
        );
        sink.put(format!("{prefix}.miss_rate"), self.miss_rate());
    }

    /// Exports only the raw counters (no derived ratios) under
    /// `prefix.` into `sink`.
    ///
    /// This is the per-shard flavour of [`CacheStats::export`]: every
    /// key it emits is additive, so shard sinks can be combined with
    /// [`StatSink::merge`] and derived ratios such as
    /// `{prefix}.miss_rate` recomputed from the merged totals.
    pub fn export_counters(&self, prefix: &str, sink: &mut StatSink) {
        sink.put_counter(format!("{prefix}.hits"), self.hits);
        sink.put_counter(format!("{prefix}.misses"), self.misses);
        sink.put_counter(format!("{prefix}.evictions"), self.evictions);
        sink.put_counter(format!("{prefix}.writebacks"), self.writebacks);
        sink.put_counter(
            format!("{prefix}.coherence_invalidations"),
            self.coherence_invalidations,
        );
    }

    /// Adds another stats block into this one (for aggregating per-core
    /// caches into a machine total).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits.add(other.hits.get());
        self.misses.add(other.misses.get());
        self.evictions.add(other.evictions.get());
        self.writebacks.add(other.writebacks.get());
        self.coherence_invalidations
            .add(other.coherence_invalidations.get());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_derivations() {
        let c = CacheConfig::new(256 * 1024, 8, 64, 8, ReplKind::Lru);
        assert_eq!(c.num_sets(), 512);
        assert_eq!(c.num_blocks(), 4096);
        assert_eq!(c.size_bytes(), 256 * 1024);
        assert_eq!(c.assoc(), 8);
        assert_eq!(c.block_bytes(), 64);
    }

    #[test]
    fn display_is_compact() {
        let c = CacheConfig::new(32 * 1024, 4, 64, 1, ReplKind::Lru);
        assert_eq!(c.to_string(), "32KiB 4-way 64B-block 1cyc lru");
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn bad_geometry_panics() {
        let _ = CacheConfig::new(100, 3, 64, 1, ReplKind::Lru);
    }

    #[test]
    fn miss_rate_zero_when_untouched() {
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = CacheStats::default();
        a.hits.add(2);
        a.writebacks.add(1);
        let mut b = CacheStats::default();
        b.hits.add(3);
        b.misses.add(5);
        a.merge(&b);
        assert_eq!(a.hits.get(), 5);
        assert_eq!(a.misses.get(), 5);
        assert_eq!(a.writebacks.get(), 1);
    }

    #[test]
    fn export_writes_all_keys() {
        let mut sink = StatSink::new();
        let mut s = CacheStats::default();
        s.hits.add(9);
        s.misses.add(1);
        s.export("l1", &mut sink);
        assert_eq!(sink.get("l1.hits"), Some(9.0));
        assert_eq!(sink.get("l1.miss_rate"), Some(0.1));
        assert_eq!(sink.get("l1.coherence_invalidations"), Some(0.0));
    }
}
