//! A generic set-associative tag array.
//!
//! [`SetAssoc`] maps [`BlockAddr`]s to payloads of type `L` (cache-line
//! metadata, directory entries, …) with bounded associativity and a
//! pluggable replacement policy. It is the storage substrate for the
//! private caches, the LLC banks and the sparse/stash directory slices.

// lint: allow-file(indexing) — set indices are masked by `set_mask` and
// way indices come from `way_of`/`free_way`/the policy, all bounded by the
// per-set `ways` vector sized at construction.

use crate::replacement::{ReplKind, ReplacementPolicy};
use stashdir_common::{BlockAddr, DetRng};

struct Set<L> {
    ways: Vec<Option<(BlockAddr, L)>>,
    policy: Box<dyn ReplacementPolicy>,
}

impl<L> Set<L> {
    fn valid_mask(&self) -> Vec<bool> {
        self.ways.iter().map(Option::is_some).collect()
    }

    fn way_of(&self, block: BlockAddr) -> Option<usize> {
        self.ways
            .iter()
            .position(|w| matches!(w, Some((b, _)) if *b == block))
    }

    fn free_way(&self) -> Option<usize> {
        self.ways.iter().position(Option::is_none)
    }
}

/// A set-associative array of `L` payloads keyed by block address.
///
/// The structural invariant is that a block lives in exactly one way of the
/// set its address maps to, so lookups are O(associativity).
///
/// # Examples
///
/// ```
/// use stashdir_common::BlockAddr;
/// use stashdir_mem::{ReplKind, SetAssoc};
///
/// let mut a: SetAssoc<u32> = SetAssoc::new(2, 2, ReplKind::Lru, 7);
/// a.insert(BlockAddr::new(1), 10);
/// assert_eq!(a.get(BlockAddr::new(1)), Some(&10));
/// assert_eq!(a.occupancy(), 1);
/// ```
pub struct SetAssoc<L> {
    sets: Vec<Set<L>>,
    ways: usize,
    set_mask: u64,
    rng: DetRng,
    repl: ReplKind,
}

impl<L> SetAssoc<L> {
    /// Creates an array with `num_sets` sets of `ways` ways using the given
    /// replacement policy. `seed` feeds the policy's RNG (only `Random`
    /// consumes it) so runs are reproducible.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` is not a power of two or `ways` is zero.
    pub fn new(num_sets: usize, ways: usize, repl: ReplKind, seed: u64) -> Self {
        assert!(
            num_sets.is_power_of_two(),
            "num_sets must be a power of two, got {num_sets}"
        );
        assert!(ways > 0, "ways must be positive");
        let sets = (0..num_sets)
            .map(|_| Set {
                ways: (0..ways).map(|_| None).collect(),
                policy: repl.build(ways),
            })
            .collect();
        SetAssoc {
            sets,
            ways,
            set_mask: num_sets as u64 - 1,
            rng: DetRng::seed_from(seed),
            repl,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Number of blocks currently stored.
    pub fn occupancy(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.ways.iter().filter(|w| w.is_some()).count())
            .sum()
    }

    /// The replacement policy kind this array was built with.
    pub fn repl_kind(&self) -> ReplKind {
        self.repl
    }

    /// The set index a block maps to.
    pub fn set_index(&self, block: BlockAddr) -> usize {
        (block.get() & self.set_mask) as usize
    }

    /// Returns the payload for `block` without updating recency.
    pub fn get(&self, block: BlockAddr) -> Option<&L> {
        let set = &self.sets[self.set_index(block)];
        set.way_of(block)
            .and_then(|w| set.ways[w].as_ref())
            .map(|(_, l)| l)
    }

    /// Returns the payload for `block` mutably without updating recency.
    pub fn get_mut(&mut self, block: BlockAddr) -> Option<&mut L> {
        let idx = self.set_index(block);
        let set = &mut self.sets[idx];
        set.way_of(block)
            .and_then(|w| set.ways[w].as_mut())
            .map(|(_, l)| l)
    }

    /// Tests whether `block` is present.
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.get(block).is_some()
    }

    /// Records a hit on `block`, promoting it in the replacement order.
    /// Returns `false` if the block is absent.
    pub fn touch(&mut self, block: BlockAddr) -> bool {
        let idx = self.set_index(block);
        let set = &mut self.sets[idx];
        match set.way_of(block) {
            Some(w) => {
                set.policy.on_hit(w);
                true
            }
            None => false,
        }
    }

    /// Returns the payload mutably and promotes the block (hit semantics).
    pub fn access_mut(&mut self, block: BlockAddr) -> Option<&mut L> {
        let idx = self.set_index(block);
        let set = &mut self.sets[idx];
        let w = set.way_of(block)?;
        set.policy.on_hit(w);
        set.ways[w].as_mut().map(|(_, l)| l)
    }

    /// Inserts `block`, evicting and returning the replacement victim if
    /// the target set is full.
    ///
    /// # Panics
    ///
    /// Panics if `block` is already present (callers must use [`get_mut`]
    /// to update an existing payload).
    ///
    /// [`get_mut`]: SetAssoc::get_mut
    pub fn insert(&mut self, block: BlockAddr, payload: L) -> Option<(BlockAddr, L)> {
        let idx = self.set_index(block);
        let set = &mut self.sets[idx];
        assert!(
            set.way_of(block).is_none(),
            "block {block} already present; update it instead of re-inserting"
        );
        let (way, evicted) = match set.free_way() {
            Some(w) => (w, None),
            None => {
                let valid = set.valid_mask();
                let w = set.policy.victim(&valid, &mut self.rng);
                (w, set.ways[w].take())
            }
        };
        set.ways[way] = Some((block, payload));
        set.policy.on_fill(way);
        evicted
    }

    /// The block that would be evicted if `block` were inserted now, or
    /// `None` if the target set still has a free way (or already holds
    /// `block`). May advance policy state (SRRIP aging, RNG draws), which
    /// mirrors hardware where the victim choice is made once per miss.
    pub fn victim_for(&mut self, block: BlockAddr) -> Option<BlockAddr> {
        let idx = self.set_index(block);
        let set = &mut self.sets[idx];
        if set.way_of(block).is_some() || set.free_way().is_some() {
            return None;
        }
        let valid = set.valid_mask();
        let w = set.policy.victim(&valid, &mut self.rng);
        set.ways[w].as_ref().map(|(b, _)| *b)
    }

    /// Removes `block`, returning its payload.
    pub fn remove(&mut self, block: BlockAddr) -> Option<L> {
        let idx = self.set_index(block);
        let set = &mut self.sets[idx];
        let w = set.way_of(block)?;
        set.ways[w].take().map(|(_, l)| l)
    }

    /// Iterates the occupants of the set `block` maps to, as
    /// `(way, block, payload)` triples. Used by callers that pick victims
    /// by payload content (the stash directory's private-first policy).
    pub fn set_occupants(&self, block: BlockAddr) -> impl Iterator<Item = (usize, BlockAddr, &L)> {
        self.sets[self.set_index(block)]
            .ways
            .iter()
            .enumerate()
            .filter_map(|(w, slot)| slot.as_ref().map(|(b, l)| (w, *b, l)))
    }

    /// `true` when the set `block` maps to has no free way and does not
    /// already contain `block` (i.e. inserting `block` would evict).
    pub fn would_evict(&self, block: BlockAddr) -> bool {
        let set = &self.sets[self.set_index(block)];
        set.way_of(block).is_none() && set.free_way().is_none()
    }

    /// Iterates every resident `(block, payload)` pair in set order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, &L)> {
        self.sets
            .iter()
            .flat_map(|s| s.ways.iter().filter_map(|w| w.as_ref()))
            .map(|(b, l)| (*b, l))
    }

    /// Removes every block.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            for way in &mut set.ways {
                *way = None;
            }
        }
    }
}

impl<L: std::fmt::Debug> std::fmt::Debug for SetAssoc<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SetAssoc")
            .field("num_sets", &self.num_sets())
            .field("ways", &self.ways)
            .field("occupancy", &self.occupancy())
            .field("repl", &self.repl)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array(sets: usize, ways: usize) -> SetAssoc<u32> {
        SetAssoc::new(sets, ways, ReplKind::Lru, 1)
    }

    #[test]
    fn insert_get_remove() {
        let mut a = array(4, 2);
        assert!(a.insert(BlockAddr::new(5), 50).is_none());
        assert_eq!(a.get(BlockAddr::new(5)), Some(&50));
        assert_eq!(a.remove(BlockAddr::new(5)), Some(50));
        assert_eq!(a.get(BlockAddr::new(5)), None);
        assert_eq!(a.remove(BlockAddr::new(5)), None);
    }

    #[test]
    fn conflicting_blocks_evict_lru() {
        let mut a = array(4, 2);
        // Blocks 0, 4, 8 all map to set 0.
        a.insert(BlockAddr::new(0), 0);
        a.insert(BlockAddr::new(4), 4);
        a.touch(BlockAddr::new(0)); // 4 becomes LRU
        let evicted = a.insert(BlockAddr::new(8), 8);
        assert_eq!(evicted, Some((BlockAddr::new(4), 4)));
        assert!(a.contains(BlockAddr::new(0)));
        assert!(a.contains(BlockAddr::new(8)));
    }

    #[test]
    fn victim_for_predicts_then_insert_evicts_it() {
        let mut a = array(1, 4);
        for i in 0..4 {
            a.insert(BlockAddr::new(i), i as u32);
        }
        let predicted = a.victim_for(BlockAddr::new(9)).unwrap();
        let evicted = a.insert(BlockAddr::new(9), 9).unwrap().0;
        assert_eq!(predicted, evicted);
    }

    #[test]
    fn victim_for_none_when_room_or_present() {
        let mut a = array(1, 2);
        a.insert(BlockAddr::new(1), 1);
        assert_eq!(a.victim_for(BlockAddr::new(2)), None, "free way exists");
        a.insert(BlockAddr::new(2), 2);
        assert_eq!(a.victim_for(BlockAddr::new(1)), None, "already present");
        assert!(a.victim_for(BlockAddr::new(3)).is_some());
    }

    #[test]
    fn occupancy_and_capacity_track_contents() {
        let mut a = array(4, 2);
        assert_eq!(a.capacity(), 8);
        assert_eq!(a.occupancy(), 0);
        for i in 0..5 {
            a.insert(BlockAddr::new(i), 0);
        }
        assert_eq!(a.occupancy(), 5);
        a.clear();
        assert_eq!(a.occupancy(), 0);
    }

    #[test]
    fn access_mut_promotes() {
        let mut a = array(1, 2);
        a.insert(BlockAddr::new(0), 0);
        a.insert(BlockAddr::new(1), 1);
        *a.access_mut(BlockAddr::new(0)).unwrap() = 99; // 1 is now LRU
        let evicted = a.insert(BlockAddr::new(2), 2).unwrap();
        assert_eq!(evicted.0, BlockAddr::new(1));
        assert_eq!(a.get(BlockAddr::new(0)), Some(&99));
    }

    #[test]
    fn set_occupants_lists_whole_set() {
        let mut a = array(2, 2);
        a.insert(BlockAddr::new(0), 10); // set 0
        a.insert(BlockAddr::new(2), 20); // set 0
        a.insert(BlockAddr::new(1), 11); // set 1
        let set0: Vec<_> = a.set_occupants(BlockAddr::new(0)).collect();
        assert_eq!(set0.len(), 2);
        assert!(set0
            .iter()
            .any(|&(_, b, &v)| b == BlockAddr::new(0) && v == 10));
        assert!(set0
            .iter()
            .any(|&(_, b, &v)| b == BlockAddr::new(2) && v == 20));
    }

    #[test]
    fn would_evict_reports_pressure() {
        let mut a = array(1, 2);
        assert!(!a.would_evict(BlockAddr::new(0)));
        a.insert(BlockAddr::new(0), 0);
        a.insert(BlockAddr::new(1), 1);
        assert!(a.would_evict(BlockAddr::new(2)));
        assert!(!a.would_evict(BlockAddr::new(0)), "already present");
    }

    #[test]
    fn iter_visits_everything() {
        let mut a = array(4, 2);
        for i in 0..6 {
            a.insert(BlockAddr::new(i), i as u32);
        }
        let mut seen: Vec<u64> = a.iter().map(|(b, _)| b.get()).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn double_insert_panics() {
        let mut a = array(2, 2);
        a.insert(BlockAddr::new(1), 1);
        a.insert(BlockAddr::new(1), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panics() {
        let _: SetAssoc<u32> = SetAssoc::new(3, 2, ReplKind::Lru, 0);
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut a = array(8, 1);
        for i in 0..8 {
            assert!(a.insert(BlockAddr::new(i), i as u32).is_none());
        }
        assert_eq!(a.occupancy(), 8);
    }
}
