//! The DLS directoryless backend (related-work baseline): no directory
//! SRAM at all.
//!
//! DLS classifies each block as *private* or *shared* at first touch.
//! Private blocks are cached normally in their owner's hierarchy; the
//! moment a second core touches a block it is reclassified shared —
//! permanently — and from then on every access to it is serviced as a
//! **remote access to the shared LLC bank**, with no private-cache copy
//! ever made. With no copies to track, shared blocks need no coherence
//! state; private blocks need only an owner, which rides the existing
//! page-table/TLB metadata rather than dedicated directory storage.
//!
//! The model below keeps the owner map as a functional shadow structure
//! (the simulator still needs to know who holds a private copy), but its
//! [`storage_bits`] is zero: the scheme's whole premise is trading
//! directory area for NoC traffic and remote-access latency, which the
//! machine accounts separately (`backend.remote_llc_accesses`,
//! `backend.dls_reclassifications`).
//!
//! [`storage_bits`]: DirectoryModel::storage_bits

use crate::cost::CostParams;
use crate::model::{DirStats, DirectoryModel, EvictionAction};
use stashdir_common::BlockAddr;
use stashdir_protocol::DirView;
use std::collections::HashMap;

/// A directoryless owner map: unbounded, never evicts, costs no bits.
///
/// # Examples
///
/// ```
/// use stashdir_common::{BlockAddr, CoreId};
/// use stashdir_core::{CostParams, DirectoryModel, DlsDirectory};
/// use stashdir_protocol::DirView;
///
/// let mut dir = DlsDirectory::new();
/// let act = dir.install(BlockAddr::new(7), DirView::Exclusive(CoreId::new(3)));
/// assert!(act.is_none()); // never evicts
/// let params = CostParams { tag_bits: 30, cores: 16, llc_lines: 1024 };
/// assert_eq!(dir.storage_bits(&params), 0); // the point of the scheme
/// ```
#[derive(Debug, Default)]
pub struct DlsDirectory {
    owners: HashMap<BlockAddr, DirView>,
    stats: DirStats,
}

impl DlsDirectory {
    /// Creates an empty owner map.
    pub fn new() -> Self {
        DlsDirectory::default()
    }
}

impl DirectoryModel for DlsDirectory {
    fn name(&self) -> &'static str {
        "dls"
    }

    fn capacity(&self) -> usize {
        usize::MAX
    }

    fn occupancy(&self) -> usize {
        self.owners.len()
    }

    fn lookup(&self, block: BlockAddr) -> Option<DirView> {
        self.owners.get(&block).cloned()
    }

    fn install(&mut self, block: BlockAddr, view: DirView) -> EvictionAction {
        assert!(
            view != DirView::Untracked,
            "install() takes a tracking view; use remove() to untrack"
        );
        self.stats.lookups.incr();
        if self.owners.insert(block, view).is_some() {
            self.stats.hits.incr();
        } else {
            self.stats.allocations.incr();
        }
        EvictionAction::None
    }

    fn remove(&mut self, block: BlockAddr) {
        self.owners.remove(&block);
    }

    fn entries(&self) -> Vec<(BlockAddr, DirView)> {
        let mut v: Vec<_> = self.owners.iter().map(|(b, v)| (*b, v.clone())).collect();
        v.sort_by_key(|(b, _)| *b);
        v
    }

    fn stats(&self) -> &DirStats {
        &self.stats
    }

    fn storage_bits(&self, _params: &CostParams) -> u64 {
        // Private/shared classification lives in page-table/TLB metadata;
        // no directory SRAM exists.
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stashdir_common::CoreId;

    fn excl(core: u16) -> DirView {
        DirView::Exclusive(CoreId::new(core))
    }

    #[test]
    fn never_evicts() {
        let mut d = DlsDirectory::new();
        for i in 0..200 {
            assert!(d.install(BlockAddr::new(i), excl((i % 8) as u16)).is_none());
        }
        assert_eq!(d.occupancy(), 200);
        assert_eq!(d.lookup(BlockAddr::new(5)), Some(excl(5)));
    }

    #[test]
    fn remove_untracks() {
        let mut d = DlsDirectory::new();
        d.install(BlockAddr::new(1), excl(0));
        d.remove(BlockAddr::new(1));
        assert_eq!(d.lookup(BlockAddr::new(1)), None);
        assert_eq!(d.entries().len(), 0);
    }

    #[test]
    fn storage_is_free() {
        let params = CostParams {
            tag_bits: 32,
            cores: 64,
            llc_lines: 1 << 20,
        };
        assert_eq!(DlsDirectory::new().storage_bits(&params), 0);
    }

    #[test]
    #[should_panic(expected = "tracking view")]
    fn installing_untracked_panics() {
        DlsDirectory::new().install(BlockAddr::new(0), DirView::Untracked);
    }
}
