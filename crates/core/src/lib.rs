//! Coherence-directory organizations: the **Stash Directory** (the paper's
//! contribution) and the baselines it is evaluated against.
//!
//! A directory tracks, per block, which private caches hold copies. The
//! organizations differ in *storage* and in *what happens when they run
//! out of it*:
//!
//! | Organization | Storage | On conflict |
//! |---|---|---|
//! | [`FullMapDirectory`] | one entry per LLC line (ideal) | never conflicts |
//! | [`SparseDirectory`] | set-associative, under-provisioned | invalidate all copies of the victim |
//! | [`StashDirectory`] | set-associative, under-provisioned | **silently drop** entries tracking *private* blocks (set the LLC stash bit); invalidate only shared victims |
//! | [`CuckooDirectory`] | multi-hash, under-provisioned | relocate; invalidate only when a relocation path is exhausted |
//! | [`DlsDirectory`] | none (directoryless) | never conflicts; shared blocks are never cached privately |
//! | [`OpaqueDirectory`] | set-associative shards at opaque banks | invalidate all copies of the victim |
//!
//! All implement [`DirectoryModel`], so the simulator (and your own code)
//! can swap them freely — [`DirConfig::build`] resolves the organization
//! through the enumerable backend [`registry`].
//!
//! # Examples
//!
//! ```
//! use stashdir_common::{BlockAddr, CoreId};
//! use stashdir_core::{DirConfig, DirectoryModel, EvictionAction};
//! use stashdir_protocol::DirView;
//!
//! // A tiny stash directory: 1 set x 2 ways.
//! let mut dir = DirConfig::stash(1, 2).build(42);
//! let owner = |i| DirView::Exclusive(CoreId::new(i));
//! assert_eq!(dir.install(BlockAddr::new(1), owner(1)), EvictionAction::None);
//! assert_eq!(dir.install(BlockAddr::new(2), owner(2)), EvictionAction::None);
//! // Third entry: the set is full, but the LRU victim is private, so the
//! // stash directory drops it silently instead of invalidating.
//! match dir.install(BlockAddr::new(3), owner(3)) {
//!     EvictionAction::Silent { block, .. } => assert_eq!(block, BlockAddr::new(1)),
//!     other => panic!("expected silent eviction, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod cuckoo;
pub mod dls;
pub mod format;
pub mod fullmap;
pub mod model;
pub mod opaque;
pub mod registry;
pub mod sparse;
pub mod stash;
mod storage;

pub use cost::{CostParams, EnergyCounts, EnergyModel};
pub use cuckoo::CuckooDirectory;
pub use dls::DlsDirectory;
pub use format::SharerFormat;
pub use fullmap::FullMapDirectory;
pub use model::{DirConfig, DirKind, DirReplPolicy, DirStats, DirectoryModel, EvictionAction};
pub use opaque::OpaqueDirectory;
pub use registry::{backends, BackendInfo};
pub use sparse::SparseDirectory;
pub use stash::StashDirectory;
