//! A cuckoo-hashed directory, after the "Cuckoo Directory" of Ferdman et
//! al. (HPCA 2011) — the related-work baseline the paper positions itself
//! against.
//!
//! `d` hash tables, each probed with an independent hash of the block
//! address. An insert that finds all `d` candidate slots full displaces
//! one occupant and re-inserts it elsewhere, walking a relocation path of
//! bounded length. Only when the budget is exhausted does an entry get
//! evicted (with conventional invalidation). Relocation spreads conflicts
//! so evictions are far rarer than in a set-associative sparse directory
//! of equal size — but, unlike the stash directory, every eviction still
//! invalidates.

// lint: allow-file(indexing) — tables/slots are fixed at construction and
// every index comes from `hash()` (mod slots) or `position_of`, so the
// bounds hold by construction.

use crate::cost::CostParams;
use crate::model::{DirStats, DirectoryModel, EvictionAction};
use stashdir_common::{BlockAddr, DetRng};
use stashdir_protocol::DirView;

/// A cuckoo directory with `d` hash tables.
///
/// # Examples
///
/// ```
/// use stashdir_common::{BlockAddr, CoreId};
/// use stashdir_core::{CuckooDirectory, DirectoryModel};
/// use stashdir_protocol::DirView;
///
/// let mut dir = CuckooDirectory::new(64, 4, 8, 7);
/// dir.install(BlockAddr::new(3), DirView::Exclusive(CoreId::new(1)));
/// assert!(dir.lookup(BlockAddr::new(3)).is_some());
/// ```
#[derive(Debug)]
pub struct CuckooDirectory {
    /// `tables[i]` has `slots` entries, probed at `hash(i, block)`.
    tables: Vec<Vec<Option<(BlockAddr, DirView)>>>,
    slots: usize,
    max_path: usize,
    rng: DetRng,
    stats: DirStats,
}

impl CuckooDirectory {
    /// Creates a cuckoo directory with `entries` total entries split over
    /// `hashes` tables, relocating at most `max_path` times per insert.
    ///
    /// # Panics
    ///
    /// Panics if `hashes` < 2, `entries` does not divide evenly into
    /// `hashes` non-empty tables, or `max_path` is zero.
    pub fn new(entries: usize, hashes: usize, max_path: usize, seed: u64) -> Self {
        assert!(hashes >= 2, "cuckoo hashing needs at least two tables");
        assert!(max_path > 0, "relocation budget must be positive");
        assert!(
            entries.is_multiple_of(hashes) && entries / hashes > 0,
            "{entries} entries do not split over {hashes} tables"
        );
        let slots = entries / hashes;
        CuckooDirectory {
            tables: (0..hashes).map(|_| vec![None; slots]).collect(),
            slots,
            max_path,
            rng: DetRng::seed_from(seed),
            stats: DirStats::default(),
        }
    }

    fn hash(&self, table: usize, block: BlockAddr) -> usize {
        // SplitMix64-style finalizer, salted per table.
        let mut z = block
            .get()
            .wrapping_add((table as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z = z ^ (z >> 31);
        (z % self.slots as u64) as usize
    }

    fn position_of(&self, block: BlockAddr) -> Option<(usize, usize)> {
        (0..self.tables.len()).find_map(|t| {
            let s = self.hash(t, block);
            match &self.tables[t][s] {
                Some((b, _)) if *b == block => Some((t, s)),
                _ => None,
            }
        })
    }

    /// Places `(block, view)`; returns the entry evicted when the
    /// relocation budget ran out. The newly inserted `block` itself is
    /// never the victim — a caller installing a view for a block it is
    /// about to grant needs that block tracked afterwards.
    fn place(&mut self, block: BlockAddr, view: DirView) -> Option<(BlockAddr, DirView)> {
        let mut item = (block, view);
        // Avoid immediately displacing back into the slot we came from by
        // remembering the table we last landed in (usize::MAX = none).
        let mut last_table = usize::MAX;
        for _step in 0..=self.max_path {
            // Any free candidate slot?
            for t in 0..self.tables.len() {
                let s = self.hash(t, item.0);
                if self.tables[t][s].is_none() {
                    self.tables[t][s] = Some(item);
                    return None;
                }
            }
            // All candidates full: displace one at random (not the table
            // we just came from, to guarantee progress).
            let mut t = self.rng.index(self.tables.len());
            if t == last_table {
                t = (t + 1) % self.tables.len();
            }
            let s = self.hash(t, item.0);
            let displaced = match self.tables[t][s].take() {
                Some(d) => d,
                // The candidate scan above saw every slot full, so this
                // cannot miss; if it ever did, the slot is free — use it.
                None => {
                    self.tables[t][s] = Some(item);
                    return None;
                }
            };
            self.tables[t][s] = Some(item);
            self.stats.relocations.incr();
            item = displaced;
            last_table = t;
        }
        if item.0 == block {
            // The relocation walk cycled and bounced the new block back
            // out. Force it into one of its candidate slots and evict
            // that occupant instead.
            let s = self.hash(0, block);
            let victim = self.tables[0][s].take();
            self.tables[0][s] = Some(item);
            debug_assert!(victim.is_some(), "cycled walk left a free slot");
            debug_assert!(victim.as_ref().is_none_or(|v| v.0 != block));
            return victim;
        }
        Some(item)
    }
}

impl DirectoryModel for CuckooDirectory {
    fn name(&self) -> &'static str {
        "cuckoo"
    }

    fn capacity(&self) -> usize {
        self.slots * self.tables.len()
    }

    fn occupancy(&self) -> usize {
        self.tables
            .iter()
            .map(|t| t.iter().filter(|s| s.is_some()).count())
            .sum()
    }

    fn lookup(&self, block: BlockAddr) -> Option<DirView> {
        self.position_of(block)
            .and_then(|(t, s)| self.tables[t][s].as_ref())
            .map(|(_, v)| v.clone())
    }

    fn install(&mut self, block: BlockAddr, view: DirView) -> EvictionAction {
        assert!(
            view != DirView::Untracked,
            "install() takes a tracking view; use remove() to untrack"
        );
        self.stats.lookups.incr();
        if let Some((t, s)) = self.position_of(block) {
            self.stats.hits.incr();
            self.tables[t][s] = Some((block, view));
            return EvictionAction::None;
        }
        self.stats.allocations.incr();
        match self.place(block, view) {
            None => EvictionAction::None,
            Some((victim, victim_view)) => {
                self.stats.invalidating_evictions.incr();
                self.stats
                    .copies_invalidated
                    .add(victim_view.holders().len() as u64);
                if victim_view.is_private() {
                    self.stats.private_victims_invalidated.incr();
                }
                EvictionAction::Invalidate {
                    block: victim,
                    view: victim_view,
                }
            }
        }
    }

    fn remove(&mut self, block: BlockAddr) {
        if let Some((t, s)) = self.position_of(block) {
            self.tables[t][s] = None;
        }
    }

    fn entries(&self) -> Vec<(BlockAddr, DirView)> {
        self.tables
            .iter()
            .flat_map(|t| t.iter().filter_map(|s| s.clone()))
            .collect()
    }

    fn stats(&self) -> &DirStats {
        &self.stats
    }

    fn storage_bits(&self, params: &CostParams) -> u64 {
        // Hashed placement cannot shorten tags: store the full tag.
        params.set_assoc_bits(self.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stashdir_common::CoreId;

    fn excl(core: u16) -> DirView {
        DirView::Exclusive(CoreId::new(core))
    }

    fn dir(entries: usize) -> CuckooDirectory {
        CuckooDirectory::new(entries, 4, 8, 1)
    }

    #[test]
    fn install_lookup_remove() {
        let mut d = dir(64);
        assert!(d.install(BlockAddr::new(10), excl(1)).is_none());
        assert_eq!(d.lookup(BlockAddr::new(10)), Some(excl(1)));
        d.remove(BlockAddr::new(10));
        assert_eq!(d.lookup(BlockAddr::new(10)), None);
        assert_eq!(d.occupancy(), 0);
    }

    #[test]
    fn update_in_place() {
        let mut d = dir(64);
        d.install(BlockAddr::new(5), excl(1));
        assert!(d.install(BlockAddr::new(5), excl(2)).is_none());
        assert_eq!(d.lookup(BlockAddr::new(5)), Some(excl(2)));
        assert_eq!(d.occupancy(), 1);
    }

    #[test]
    fn fills_to_high_occupancy_before_evicting() {
        // Cuckoo's selling point: near-full occupancy without conflicts.
        let mut d = dir(256);
        let mut evictions = 0;
        for i in 0..230 {
            if !d.install(BlockAddr::new(i), excl(0)).is_none() {
                evictions += 1;
            }
        }
        // ~90% load factor with d=4 should displace almost nothing.
        assert!(
            evictions <= 4,
            "expected few evictions at 90% load, got {evictions}"
        );
        assert!(d.occupancy() >= 226);
    }

    #[test]
    fn over_filling_evicts_with_invalidation() {
        let mut d = dir(16);
        let mut evicted = Vec::new();
        for i in 0..32 {
            if let EvictionAction::Invalidate { block, .. } = d.install(BlockAddr::new(i), excl(0))
            {
                evicted.push(block);
            }
        }
        assert!(!evicted.is_empty(), "overfilled table must evict");
        assert_eq!(d.occupancy(), 32 - evicted.len());
        assert_eq!(d.stats().invalidating_evictions.get(), evicted.len() as u64);
        // Every block is either tracked or was evicted: no entry lost.
        for i in 0..32 {
            let b = BlockAddr::new(i);
            assert!(
                d.lookup(b).is_some() || evicted.contains(&b),
                "block {b} vanished without an eviction notice"
            );
        }
    }

    #[test]
    fn never_evicts_the_block_being_inserted() {
        // A cycling relocation walk must not bounce the new block out:
        // the caller is about to grant a copy and needs it tracked.
        for seed in 0..20 {
            let mut d = CuckooDirectory::new(8, 2, 4, seed);
            for i in 0..64 {
                let block = BlockAddr::new(i);
                match d.install(block, excl(0)) {
                    EvictionAction::Invalidate { block: victim, .. } => {
                        assert_ne!(victim, block, "seed {seed}: evicted itself");
                    }
                    EvictionAction::None => {}
                    other => panic!("unexpected {other:?}"),
                }
                assert!(
                    d.lookup(block).is_some(),
                    "seed {seed}: freshly installed block untracked"
                );
            }
        }
    }

    #[test]
    fn relocations_are_counted() {
        let mut d = dir(16);
        for i in 0..16 {
            d.install(BlockAddr::new(i), excl(0));
        }
        assert!(d.stats().relocations.get() > 0);
    }

    #[test]
    fn entries_snapshot_is_consistent() {
        let mut d = dir(64);
        for i in 0..20 {
            d.install(BlockAddr::new(i), excl((i % 4) as u16));
        }
        let entries = d.entries();
        assert_eq!(entries.len(), d.occupancy());
        for (b, v) in entries {
            assert_eq!(d.lookup(b), Some(v));
        }
    }

    #[test]
    #[should_panic(expected = "at least two tables")]
    fn single_table_panics() {
        let _ = CuckooDirectory::new(16, 1, 8, 0);
    }

    #[test]
    #[should_panic(expected = "do not split")]
    fn uneven_split_panics() {
        let _ = CuckooDirectory::new(10, 4, 8, 0);
    }
}
