//! The **Stash Directory** — the paper's contribution.
//!
//! Identical storage to the conventional sparse directory, with two
//! behavioral changes on conflict:
//!
//! 1. **Victim selection prefers private entries** (entries whose view
//!    names exactly one core), least-recently-used first.
//! 2. **Private victims are dropped silently**: the cached copy stays in
//!    the owner's cache, untracked ("hidden"), and the caller is told to
//!    set the *stash bit* on the block's LLC line. Only victims with two
//!    or more sharers pay the conventional invalidation.
//!
//! The relaxed inclusion property this creates — *every cached block has a
//! directory entry **or** a set stash bit on its LLC line* — is what the
//! LLC's discovery mechanism (in `stashdir-sim`) restores on demand.

use crate::cost::CostParams;
use crate::format::SharerFormat;
use crate::model::{DirReplPolicy, DirStats, DirectoryModel, EvictionAction};
use crate::storage::DirStorage;
use stashdir_common::BlockAddr;
use stashdir_protocol::DirView;

/// The stash directory.
///
/// # Examples
///
/// ```
/// use stashdir_common::{BlockAddr, CoreId, SharerSet};
/// use stashdir_core::{DirReplPolicy, DirectoryModel, EvictionAction, StashDirectory};
/// use stashdir_protocol::DirView;
///
/// let mut dir = StashDirectory::new(1, 2, DirReplPolicy::PrivateFirstLru, 0);
/// let mut sharers = SharerSet::new(16);
/// sharers.extend([CoreId::new(0), CoreId::new(1)]);
///
/// dir.install(BlockAddr::new(1), DirView::Shared(sharers)); // shared, LRU
/// dir.install(BlockAddr::new(2), DirView::Exclusive(CoreId::new(2))); // private
///
/// // The set is full. Private-first selection skips the older shared
/// // entry and silently drops the private one.
/// match dir.install(BlockAddr::new(3), DirView::Exclusive(CoreId::new(3))) {
///     EvictionAction::Silent { block, owner } => {
///         assert_eq!(block, BlockAddr::new(2));
///         assert_eq!(owner, CoreId::new(2));
///     }
///     other => panic!("expected silent eviction, got {other:?}"),
/// }
/// ```
#[derive(Debug)]
pub struct StashDirectory {
    storage: DirStorage,
    repl: DirReplPolicy,
    format: SharerFormat,
    stats: DirStats,
}

impl StashDirectory {
    /// Creates a stash directory with `sets × ways` entries.
    ///
    /// The paper's design uses [`DirReplPolicy::PrivateFirstLru`]; plain
    /// `Lru` and `Random` are supported as replacement-policy ablations
    /// (they change *which* victim is chosen, not the silent-drop rule).
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(sets: usize, ways: usize, repl: DirReplPolicy, seed: u64) -> Self {
        StashDirectory {
            storage: DirStorage::new(sets, ways, seed),
            repl,
            format: SharerFormat::FullMap,
            stats: DirStats::default(),
        }
    }

    /// Selects the sharer-encoding format (default: precise full-map).
    /// Overflowed limited-pointer entries are never private, so the
    /// stash mechanism automatically stops hiding them.
    pub fn with_format(mut self, format: SharerFormat) -> Self {
        self.format = format;
        self
    }

    /// The victim-selection policy.
    pub fn repl(&self) -> DirReplPolicy {
        self.repl
    }

    /// Fraction of evictions handled silently so far (1.0 when no
    /// eviction has happened yet — vacuously all-silent).
    pub fn silent_fraction(&self) -> f64 {
        let total = self.stats.total_evictions();
        if total == 0 {
            1.0
        } else {
            self.stats.silent_evictions.get() as f64 / total as f64
        }
    }
}

impl DirectoryModel for StashDirectory {
    fn name(&self) -> &'static str {
        "stash"
    }

    fn capacity(&self) -> usize {
        self.storage.capacity()
    }

    fn occupancy(&self) -> usize {
        self.storage.occupancy()
    }

    fn lookup(&self, block: BlockAddr) -> Option<DirView> {
        self.storage.lookup(block).cloned()
    }

    fn install(&mut self, block: BlockAddr, view: DirView) -> EvictionAction {
        assert!(
            view != DirView::Untracked,
            "install() takes a tracking view; use remove() to untrack"
        );
        self.stats.lookups.incr();
        let view = self.format.degrade(view);
        if self.storage.update(block, view.clone()) {
            self.stats.hits.incr();
            return EvictionAction::None;
        }
        self.stats.allocations.incr();
        let action = if self.storage.needs_victim(block) {
            let (victim, victim_view) = self.storage.choose_victim(block, self.repl);
            self.storage.remove(victim);
            if let Some(owner) = victim_view
                .holders()
                .first()
                .copied()
                .filter(|_| victim_view.is_private())
            {
                // The stash mechanism: drop the entry, keep the copy.
                self.stats.silent_evictions.incr();
                EvictionAction::Silent {
                    block: victim,
                    owner,
                }
            } else {
                self.stats.invalidating_evictions.incr();
                self.stats
                    .copies_invalidated
                    .add(victim_view.holders().len() as u64);
                EvictionAction::Invalidate {
                    block: victim,
                    view: victim_view,
                }
            }
        } else {
            EvictionAction::None
        };
        self.storage.insert(block, view);
        action
    }

    fn remove(&mut self, block: BlockAddr) {
        self.storage.remove(block);
    }

    fn entries(&self) -> Vec<(BlockAddr, DirView)> {
        self.storage.entries()
    }

    fn stats(&self) -> &DirStats {
        &self.stats
    }

    fn storage_bits(&self, params: &CostParams) -> u64 {
        // Entry storage plus one stash bit per LLC line.
        self.capacity() as u64 * self.format.entry_bits(params) + params.llc_lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stashdir_common::{CoreId, SharerSet};

    fn excl(core: u16) -> DirView {
        DirView::Exclusive(CoreId::new(core))
    }

    fn shared(cores: &[u16]) -> DirView {
        let mut s = SharerSet::new(16);
        s.extend(cores.iter().map(|&c| CoreId::new(c)));
        DirView::Shared(s)
    }

    fn dir(sets: usize, ways: usize) -> StashDirectory {
        StashDirectory::new(sets, ways, DirReplPolicy::PrivateFirstLru, 0)
    }

    #[test]
    fn private_victim_is_dropped_silently() {
        let mut d = dir(1, 1);
        d.install(BlockAddr::new(0), excl(7));
        let action = d.install(BlockAddr::new(1), excl(8));
        assert_eq!(
            action,
            EvictionAction::Silent {
                block: BlockAddr::new(0),
                owner: CoreId::new(7),
            }
        );
        assert_eq!(d.stats().silent_evictions.get(), 1);
        assert_eq!(d.stats().copies_invalidated.get(), 0);
    }

    #[test]
    fn single_sharer_entry_is_private_too() {
        let mut d = dir(1, 1);
        d.install(BlockAddr::new(0), shared(&[5]));
        match d.install(BlockAddr::new(1), excl(0)) {
            EvictionAction::Silent { owner, .. } => assert_eq!(owner, CoreId::new(5)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn shared_victim_still_invalidates() {
        let mut d = dir(1, 1);
        d.install(BlockAddr::new(0), shared(&[1, 2]));
        let action = d.install(BlockAddr::new(1), excl(0));
        assert_eq!(
            action,
            EvictionAction::Invalidate {
                block: BlockAddr::new(0),
                view: shared(&[1, 2]),
            }
        );
        assert_eq!(d.stats().invalidating_evictions.get(), 1);
        assert_eq!(d.stats().copies_invalidated.get(), 2);
    }

    #[test]
    fn private_first_protects_shared_entries() {
        let mut d = dir(1, 3);
        d.install(BlockAddr::new(0), shared(&[1, 2])); // oldest, shared
        d.install(BlockAddr::new(1), excl(3));
        d.install(BlockAddr::new(2), excl(4));
        // Victim should be block 1: the LRU *private* entry.
        match d.install(BlockAddr::new(3), excl(5)) {
            EvictionAction::Silent { block, owner } => {
                assert_eq!(block, BlockAddr::new(1));
                assert_eq!(owner, CoreId::new(3));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(
            d.lookup(BlockAddr::new(0)).is_some(),
            "shared entry survives"
        );
    }

    #[test]
    fn plain_lru_ablation_can_pick_shared_victims() {
        let mut d = StashDirectory::new(1, 2, DirReplPolicy::Lru, 0);
        d.install(BlockAddr::new(0), shared(&[1, 2])); // LRU
        d.install(BlockAddr::new(1), excl(3));
        match d.install(BlockAddr::new(2), excl(4)) {
            // LRU picks the shared entry, so stash must invalidate.
            EvictionAction::Invalidate { block, .. } => assert_eq!(block, BlockAddr::new(0)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn silent_fraction_tracks_mix() {
        let mut d = dir(1, 1);
        assert_eq!(d.silent_fraction(), 1.0);
        d.install(BlockAddr::new(0), excl(0));
        d.install(BlockAddr::new(1), shared(&[1, 2])); // silent (victim 0 private)
        d.install(BlockAddr::new(2), excl(0)); // invalidate (victim 1 shared)
        assert_eq!(d.silent_fraction(), 0.5);
    }

    #[test]
    fn update_never_evicts() {
        let mut d = dir(1, 1);
        d.install(BlockAddr::new(0), excl(0));
        assert!(d.install(BlockAddr::new(0), shared(&[0, 1])).is_none());
        assert_eq!(d.occupancy(), 1);
    }

    #[test]
    fn storage_bits_include_stash_bits() {
        let d = dir(4, 2);
        let params = CostParams {
            tag_bits: 20,
            cores: 16,
            llc_lines: 1000,
        };
        let sparse_equal = SparseLike::bits(&params, d.capacity());
        assert_eq!(d.storage_bits(&params), sparse_equal + 1000);
    }

    struct SparseLike;
    impl SparseLike {
        fn bits(params: &CostParams, entries: usize) -> u64 {
            params.set_assoc_bits(entries)
        }
    }

    #[test]
    fn stats_name_capacity() {
        let d = dir(8, 4);
        assert_eq!(d.name(), "stash");
        assert_eq!(d.capacity(), 32);
        assert_eq!(d.repl(), DirReplPolicy::PrivateFirstLru);
    }
}
