//! Shared set-associative entry storage for the sparse and stash
//! directories: explicit per-set recency so victim selection can be
//! content-aware (the stash directory's private-first policy).

// lint: allow-file(indexing) — set indices are masked by `set_mask`; way
// indices come from `way_of`/`free_way`/`lru`, bounded by the per-set
// vectors sized at construction.

use crate::model::DirReplPolicy;
use stashdir_common::{BlockAddr, DetRng};
use stashdir_protocol::DirView;

#[derive(Debug)]
struct DirSet {
    slots: Vec<Option<(BlockAddr, DirView)>>,
    /// Way indices ordered least- to most-recently used.
    lru: Vec<usize>,
}

impl DirSet {
    fn way_of(&self, block: BlockAddr) -> Option<usize> {
        self.slots
            .iter()
            .position(|s| matches!(s, Some((b, _)) if *b == block))
    }

    fn free_way(&self) -> Option<usize> {
        self.slots.iter().position(Option::is_none)
    }

    fn promote(&mut self, way: usize) {
        debug_assert!(self.lru.contains(&way), "way tracked in recency order");
        self.lru.retain(|&w| w != way);
        self.lru.push(way);
    }
}

/// Set-associative `(BlockAddr, DirView)` storage with LRU bookkeeping.
#[derive(Debug)]
pub(crate) struct DirStorage {
    sets: Vec<DirSet>,
    set_mask: u64,
    ways: usize,
    rng: DetRng,
}

impl DirStorage {
    pub(crate) fn new(sets: usize, ways: usize, seed: u64) -> Self {
        assert!(
            sets.is_power_of_two(),
            "directory sets must be a power of two, got {sets}"
        );
        assert!(ways > 0, "directory needs at least one way");
        DirStorage {
            sets: (0..sets)
                .map(|_| DirSet {
                    slots: (0..ways).map(|_| None).collect(),
                    lru: (0..ways).collect(),
                })
                .collect(),
            set_mask: sets as u64 - 1,
            ways,
            rng: DetRng::seed_from(seed),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    pub(crate) fn occupancy(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.slots.iter().filter(|w| w.is_some()).count())
            .sum()
    }

    fn set_index(&self, block: BlockAddr) -> usize {
        (block.get() & self.set_mask) as usize
    }

    pub(crate) fn lookup(&self, block: BlockAddr) -> Option<&DirView> {
        let set = &self.sets[self.set_index(block)];
        set.way_of(block)
            .and_then(|w| set.slots[w].as_ref())
            .map(|(_, v)| v)
    }

    /// Updates an existing entry's view and recency. Returns `false` when
    /// the block is not tracked.
    pub(crate) fn update(&mut self, block: BlockAddr, view: DirView) -> bool {
        let idx = self.set_index(block);
        let set = &mut self.sets[idx];
        match set.way_of(block) {
            Some(w) => {
                set.slots[w] = Some((block, view));
                set.promote(w);
                true
            }
            None => false,
        }
    }

    /// Whether inserting `block` requires displacing an entry.
    pub(crate) fn needs_victim(&self, block: BlockAddr) -> bool {
        let set = &self.sets[self.set_index(block)];
        set.way_of(block).is_none() && set.free_way().is_none()
    }

    /// Chooses (without removing) the victim way for an insertion of
    /// `block` into its full set, honoring `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the set is not full.
    pub(crate) fn choose_victim(
        &mut self,
        block: BlockAddr,
        policy: DirReplPolicy,
    ) -> (BlockAddr, DirView) {
        let idx = self.set_index(block);
        debug_assert!(self.needs_victim(block));
        let way = {
            let set = &self.sets[idx];
            match policy {
                DirReplPolicy::Lru => set.lru[0],
                DirReplPolicy::PrivateFirstLru => set
                    .lru
                    .iter()
                    .copied()
                    .find(|&w| {
                        set.slots[w]
                            .as_ref()
                            .map(|(_, v)| v.is_private())
                            .unwrap_or(false)
                    })
                    .unwrap_or(set.lru[0]),
                DirReplPolicy::Random => self.rng.index(self.ways),
            }
        };
        let (b, v) = self.sets[idx].slots[way]
            .as_ref()
            // lint: allow(expect) — documented panic contract (doc comment).
            .expect("full set has no empty slots");
        (*b, v.clone())
    }

    /// Inserts `block` into a set with room (a free way must exist).
    ///
    /// # Panics
    ///
    /// Panics if the set is full or the block already tracked.
    pub(crate) fn insert(&mut self, block: BlockAddr, view: DirView) {
        let idx = self.set_index(block);
        let set = &mut self.sets[idx];
        assert!(set.way_of(block).is_none(), "block {block} already tracked");
        // lint: allow(expect) — documented panic contract (doc comment).
        let way = set.free_way().expect("insert requires a free way");
        set.slots[way] = Some((block, view));
        set.promote(way);
    }

    /// Removes `block`'s entry, returning its view.
    pub(crate) fn remove(&mut self, block: BlockAddr) -> Option<DirView> {
        let idx = self.set_index(block);
        let set = &mut self.sets[idx];
        let w = set.way_of(block)?;
        set.slots[w].take().map(|(_, v)| v)
    }

    pub(crate) fn entries(&self) -> Vec<(BlockAddr, DirView)> {
        self.sets
            .iter()
            .flat_map(|s| s.slots.iter().filter_map(|w| w.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stashdir_common::{CoreId, SharerSet};

    fn excl(core: u16) -> DirView {
        DirView::Exclusive(CoreId::new(core))
    }

    fn shared(cores: &[u16]) -> DirView {
        let mut s = SharerSet::new(16);
        s.extend(cores.iter().map(|&c| CoreId::new(c)));
        DirView::Shared(s)
    }

    #[test]
    fn insert_lookup_remove() {
        let mut st = DirStorage::new(4, 2, 0);
        st.insert(BlockAddr::new(1), excl(3));
        assert_eq!(st.lookup(BlockAddr::new(1)), Some(&excl(3)));
        assert_eq!(st.occupancy(), 1);
        assert_eq!(st.remove(BlockAddr::new(1)), Some(excl(3)));
        assert_eq!(st.lookup(BlockAddr::new(1)), None);
    }

    #[test]
    fn update_refreshes_recency() {
        let mut st = DirStorage::new(1, 2, 0);
        st.insert(BlockAddr::new(0), excl(0));
        st.insert(BlockAddr::new(1), excl(1));
        assert!(st.update(BlockAddr::new(0), excl(5)));
        let (victim, _) = st.choose_victim(BlockAddr::new(2), DirReplPolicy::Lru);
        assert_eq!(victim, BlockAddr::new(1), "block 0 was refreshed");
        assert!(!st.update(BlockAddr::new(9), excl(0)));
    }

    #[test]
    fn private_first_skips_shared_entries() {
        let mut st = DirStorage::new(1, 3, 0);
        st.insert(BlockAddr::new(0), shared(&[1, 2])); // LRU but shared
        st.insert(BlockAddr::new(1), excl(4));
        st.insert(BlockAddr::new(2), shared(&[5, 6]));
        let (victim, view) = st.choose_victim(BlockAddr::new(3), DirReplPolicy::PrivateFirstLru);
        assert_eq!(victim, BlockAddr::new(1));
        assert!(view.is_private());
    }

    #[test]
    fn private_first_counts_single_sharer_as_private() {
        let mut st = DirStorage::new(1, 2, 0);
        st.insert(BlockAddr::new(0), shared(&[1, 2]));
        st.insert(BlockAddr::new(1), shared(&[7]));
        let (victim, _) = st.choose_victim(BlockAddr::new(2), DirReplPolicy::PrivateFirstLru);
        assert_eq!(victim, BlockAddr::new(1));
    }

    #[test]
    fn private_first_falls_back_to_lru() {
        let mut st = DirStorage::new(1, 2, 0);
        st.insert(BlockAddr::new(0), shared(&[1, 2]));
        st.insert(BlockAddr::new(1), shared(&[3, 4]));
        let (victim, _) = st.choose_victim(BlockAddr::new(2), DirReplPolicy::PrivateFirstLru);
        assert_eq!(victim, BlockAddr::new(0), "plain LRU fallback");
    }

    #[test]
    fn needs_victim_tracks_fullness() {
        let mut st = DirStorage::new(1, 2, 0);
        assert!(!st.needs_victim(BlockAddr::new(0)));
        st.insert(BlockAddr::new(0), excl(0));
        st.insert(BlockAddr::new(1), excl(1));
        assert!(st.needs_victim(BlockAddr::new(2)));
        assert!(
            !st.needs_victim(BlockAddr::new(0)),
            "present block needs none"
        );
    }

    #[test]
    fn random_policy_picks_any_way() {
        let mut st = DirStorage::new(1, 4, 7);
        for i in 0..4 {
            st.insert(BlockAddr::new(i), excl(i as u16));
        }
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            let (victim, _) = st.choose_victim(BlockAddr::new(9), DirReplPolicy::Random);
            seen.insert(victim.get());
        }
        assert!(
            seen.len() >= 3,
            "random should spread over ways, saw {seen:?}"
        );
    }

    #[test]
    fn entries_snapshot_everything() {
        let mut st = DirStorage::new(2, 2, 0);
        st.insert(BlockAddr::new(0), excl(1));
        st.insert(BlockAddr::new(1), shared(&[2, 3]));
        let mut blocks: Vec<u64> = st.entries().iter().map(|(b, _)| b.get()).collect();
        blocks.sort_unstable();
        assert_eq!(blocks, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "already tracked")]
    fn double_insert_panics() {
        let mut st = DirStorage::new(2, 2, 0);
        st.insert(BlockAddr::new(0), excl(0));
        st.insert(BlockAddr::new(0), excl(1));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_set_count_panics() {
        let _ = DirStorage::new(3, 2, 0);
    }
}
