//! The [`DirectoryModel`] trait, its configuration, and shared statistics.

use crate::cost::CostParams;
use crate::format::SharerFormat;
use serde::{Deserialize, Serialize};
use stashdir_common::{BlockAddr, CoreId, Counter, StatSink};
use stashdir_protocol::DirView;
use std::fmt;

/// What a directory did to make room for a new entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvictionAction {
    /// No entry was displaced.
    None,
    /// The stash mechanism: an entry tracking a *private* block was
    /// dropped without invalidating the cached copy. The caller must set
    /// the stash bit on `block`'s LLC line; `owner` becomes hidden.
    Silent {
        /// The block whose entry was dropped.
        block: BlockAddr,
        /// The core that keeps the now-hidden copy.
        owner: CoreId,
    },
    /// A conventional eviction: every holder in `view` must be
    /// invalidated (Inv/Recall probes) to restore directory inclusion.
    Invalidate {
        /// The block whose entry was dropped.
        block: BlockAddr,
        /// The holders the caller must invalidate.
        view: DirView,
    },
}

impl EvictionAction {
    /// `true` when no entry was displaced.
    pub fn is_none(&self) -> bool {
        matches!(self, EvictionAction::None)
    }
}

/// Uniform interface over directory organizations.
///
/// Views stored through [`install`] are never [`DirView::Untracked`];
/// dropping tracking is expressed with [`remove`].
///
/// [`install`]: DirectoryModel::install
/// [`remove`]: DirectoryModel::remove
pub trait DirectoryModel: fmt::Debug {
    /// A short organization name (`"stash"`, `"sparse"`, …).
    fn name(&self) -> &'static str;

    /// Maximum number of simultaneously tracked blocks (`usize::MAX` for
    /// the unbounded full-map ideal).
    fn capacity(&self) -> usize;

    /// Number of blocks currently tracked.
    fn occupancy(&self) -> usize;

    /// The directory's knowledge of `block`; `None` when untracked.
    fn lookup(&self, block: BlockAddr) -> Option<DirView>;

    /// Records `view` for `block`, allocating an entry (and possibly
    /// displacing another) when the block is not yet tracked. Updating an
    /// existing entry refreshes its recency and never evicts.
    ///
    /// Returns the displacement the **caller must enact**: setting the
    /// stash bit for a [`EvictionAction::Silent`] victim, or invalidating
    /// the holders of an [`EvictionAction::Invalidate`] victim.
    ///
    /// # Panics
    ///
    /// Panics if `view` is [`DirView::Untracked`].
    fn install(&mut self, block: BlockAddr, view: DirView) -> EvictionAction;

    /// Stops tracking `block` (no-op when untracked).
    fn remove(&mut self, block: BlockAddr);

    /// Snapshot of every tracked `(block, view)` pair, for invariant
    /// checking and introspection.
    fn entries(&self) -> Vec<(BlockAddr, DirView)>;

    /// Accumulated event counts.
    fn stats(&self) -> &DirStats;

    /// Storage cost of this organization in bits under `params`.
    fn storage_bits(&self, params: &CostParams) -> u64;
}

/// Event counts every organization maintains.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirStats {
    /// `lookup` calls.
    pub lookups: Counter,
    /// `lookup` calls that found an entry.
    pub hits: Counter,
    /// Entries allocated for previously untracked blocks.
    pub allocations: Counter,
    /// Entries dropped silently (stash mechanism).
    pub silent_evictions: Counter,
    /// Entries dropped with holder invalidation (conventional behavior).
    pub invalidating_evictions: Counter,
    /// Cached copies the invalidating evictions destroyed (sum of holder
    /// counts) — the "directory-induced invalidations" of experiment E4.
    pub copies_invalidated: Counter,
    /// Invalidating evictions whose victim was private (a stash directory
    /// would have saved these; always zero for the stash directory itself).
    pub private_victims_invalidated: Counter,
    /// Cuckoo relocations performed during inserts.
    pub relocations: Counter,
}

impl DirStats {
    /// Exports counters under `prefix.` into `sink`.
    pub fn export(&self, prefix: &str, sink: &mut StatSink) {
        sink.put_counter(format!("{prefix}.lookups"), self.lookups);
        sink.put_counter(format!("{prefix}.hits"), self.hits);
        sink.put_counter(format!("{prefix}.allocations"), self.allocations);
        sink.put_counter(format!("{prefix}.silent_evictions"), self.silent_evictions);
        sink.put_counter(
            format!("{prefix}.invalidating_evictions"),
            self.invalidating_evictions,
        );
        sink.put_counter(
            format!("{prefix}.copies_invalidated"),
            self.copies_invalidated,
        );
        sink.put_counter(
            format!("{prefix}.private_victims_invalidated"),
            self.private_victims_invalidated,
        );
        sink.put_counter(format!("{prefix}.relocations"), self.relocations);
    }

    /// Adds another stats block into this one.
    pub fn merge(&mut self, other: &DirStats) {
        self.lookups.add(other.lookups.get());
        self.hits.add(other.hits.get());
        self.allocations.add(other.allocations.get());
        self.silent_evictions.add(other.silent_evictions.get());
        self.invalidating_evictions
            .add(other.invalidating_evictions.get());
        self.copies_invalidated.add(other.copies_invalidated.get());
        self.private_victims_invalidated
            .add(other.private_victims_invalidated.get());
        self.relocations.add(other.relocations.get());
    }

    /// Total evictions of either kind.
    pub fn total_evictions(&self) -> u64 {
        self.silent_evictions.get() + self.invalidating_evictions.get()
    }
}

/// Victim selection policy for the set-associative organizations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DirReplPolicy {
    /// Least-recently-used entry, regardless of content (the conventional
    /// sparse directory's policy; also an ablation for stash).
    #[default]
    Lru,
    /// The stash directory's policy: the least-recently-used entry
    /// tracking a *private* block, falling back to plain LRU when the set
    /// holds no private entry.
    PrivateFirstLru,
    /// Uniformly random valid entry (ablation).
    Random,
}

impl fmt::Display for DirReplPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DirReplPolicy::Lru => "lru",
            DirReplPolicy::PrivateFirstLru => "private-first-lru",
            DirReplPolicy::Random => "random",
        })
    }
}

/// Which organization to build, with its geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DirKind {
    /// Unbounded ideal directory.
    FullMap,
    /// Conventional sparse directory.
    Sparse {
        /// Number of sets (power of two).
        sets: usize,
        /// Ways per set.
        ways: usize,
        /// Victim selection.
        repl: DirReplPolicy,
    },
    /// The paper's stash directory.
    Stash {
        /// Number of sets (power of two).
        sets: usize,
        /// Ways per set.
        ways: usize,
        /// Victim selection ([`DirReplPolicy::PrivateFirstLru`] is the
        /// paper's design; others are ablations).
        repl: DirReplPolicy,
    },
    /// Cuckoo-hashed directory (related-work baseline).
    Cuckoo {
        /// Total entries across all hash tables.
        entries: usize,
        /// Number of hash functions/tables.
        hashes: usize,
        /// Relocation path budget per insert.
        max_path: usize,
    },
    /// Directoryless (related-work baseline): an unbounded owner map with
    /// zero storage cost; shared blocks are serviced as remote LLC
    /// accesses by the machine.
    Dls,
    /// Opaque-distributed (related-work baseline): sparse shards placed
    /// at banks by an opaque address→bank map, keyed by global addresses.
    Opaque {
        /// Number of sets (power of two).
        sets: usize,
        /// Ways per set.
        ways: usize,
        /// Victim selection.
        repl: DirReplPolicy,
    },
}

/// A buildable directory configuration.
///
/// # Examples
///
/// ```
/// use stashdir_core::DirConfig;
/// let dir = DirConfig::sparse(64, 8).build(7);
/// assert_eq!(dir.name(), "sparse");
/// assert_eq!(dir.capacity(), 512);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirConfig {
    /// The organization and geometry.
    pub kind: DirKind,
    /// Sharer-set encoding (set-associative kinds only).
    pub format: SharerFormat,
}

impl DirConfig {
    /// An unbounded full-map directory.
    pub fn full_map() -> Self {
        DirConfig {
            kind: DirKind::FullMap,
            format: SharerFormat::FullMap,
        }
    }

    /// A conventional sparse directory with LRU replacement.
    pub fn sparse(sets: usize, ways: usize) -> Self {
        DirConfig {
            kind: DirKind::Sparse {
                sets,
                ways,
                repl: DirReplPolicy::Lru,
            },
            format: SharerFormat::FullMap,
        }
    }

    /// The paper's stash directory (private-first LRU replacement).
    pub fn stash(sets: usize, ways: usize) -> Self {
        DirConfig {
            kind: DirKind::Stash {
                sets,
                ways,
                repl: DirReplPolicy::PrivateFirstLru,
            },
            format: SharerFormat::FullMap,
        }
    }

    /// A cuckoo directory with 4 hash tables and an 8-step path budget.
    pub fn cuckoo(entries: usize) -> Self {
        DirConfig {
            kind: DirKind::Cuckoo {
                entries,
                hashes: 4,
                max_path: 8,
            },
            format: SharerFormat::FullMap,
        }
    }

    /// The directoryless DLS backend.
    pub fn dls() -> Self {
        DirConfig {
            kind: DirKind::Dls,
            format: SharerFormat::FullMap,
        }
    }

    /// An opaque-distributed directory shard with LRU replacement.
    pub fn opaque(sets: usize, ways: usize) -> Self {
        DirConfig {
            kind: DirKind::Opaque {
                sets,
                ways,
                repl: DirReplPolicy::Lru,
            },
            format: SharerFormat::FullMap,
        }
    }

    /// Overrides the sharer-encoding format (sparse and stash kinds; the
    /// full-map ideal and cuckoo baseline keep precise vectors).
    pub fn with_sharer_format(mut self, format: SharerFormat) -> Self {
        self.format = format;
        self
    }

    /// Overrides the victim-selection policy (set-associative kinds only;
    /// ignored by full-map and cuckoo).
    pub fn with_repl(mut self, repl: DirReplPolicy) -> Self {
        match &mut self.kind {
            DirKind::Sparse { repl: r, .. }
            | DirKind::Stash { repl: r, .. }
            | DirKind::Opaque { repl: r, .. } => *r = repl,
            DirKind::FullMap | DirKind::Cuckoo { .. } | DirKind::Dls => {}
        }
        self
    }

    /// Number of entries this configuration provides.
    pub fn entries(&self) -> usize {
        match self.kind {
            DirKind::FullMap | DirKind::Dls => usize::MAX,
            DirKind::Sparse { sets, ways, .. }
            | DirKind::Stash { sets, ways, .. }
            | DirKind::Opaque { sets, ways, .. } => sets * ways,
            DirKind::Cuckoo { entries, .. } => entries,
        }
    }

    /// The backend-registry name this configuration resolves to. Differs
    /// from [`name`](DirConfig::name) only for the stash organization
    /// composed with a limited-pointer format, which is the registered
    /// `limited-ptr` backend.
    pub fn backend_name(&self) -> &'static str {
        match (self.kind, self.format) {
            (DirKind::Stash { .. }, SharerFormat::LimitedPtr { .. }) => "limited-ptr",
            _ => self.name(),
        }
    }

    /// Builds the directory by resolving this configuration's
    /// [`backend_name`](DirConfig::backend_name) through the backend
    /// registry. `seed` feeds stochastic policies; views carry their own
    /// sharer-set capacity.
    ///
    /// # Panics
    ///
    /// Panics if the backend name is not registered (impossible for
    /// configurations built through this type's constructors).
    pub fn build(&self, seed: u64) -> Box<dyn DirectoryModel> {
        let entry = crate::registry::resolve(self.backend_name())
            .unwrap_or_else(|| panic!("unregistered directory backend {}", self.backend_name()));
        (entry.build)(self, seed)
    }

    /// `true` when this organization can hide blocks (so homes must
    /// consult stash bits and run discovery).
    pub fn uses_stash(&self) -> bool {
        matches!(self.kind, DirKind::Stash { .. })
    }

    /// A short name for reports.
    pub fn name(&self) -> &'static str {
        match self.kind {
            DirKind::FullMap => "fullmap",
            DirKind::Sparse { .. } => "sparse",
            DirKind::Stash { .. } => "stash",
            DirKind::Cuckoo { .. } => "cuckoo",
            DirKind::Dls => "dls",
            DirKind::Opaque { .. } => "opaque",
        }
    }
}

impl fmt::Display for DirConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            DirKind::FullMap => write!(f, "fullmap"),
            DirKind::Sparse { sets, ways, repl } => {
                write!(f, "sparse({sets}x{ways},{repl})")
            }
            DirKind::Stash { sets, ways, repl } => write!(f, "stash({sets}x{ways},{repl})"),
            DirKind::Cuckoo {
                entries,
                hashes,
                max_path,
            } => write!(f, "cuckoo({entries},d={hashes},path={max_path})"),
            DirKind::Dls => write!(f, "dls"),
            DirKind::Opaque { sets, ways, repl } => write!(f, "opaque({sets}x{ways},{repl})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_entry_counts() {
        assert_eq!(DirConfig::sparse(64, 8).entries(), 512);
        assert_eq!(DirConfig::stash(16, 4).entries(), 64);
        assert_eq!(DirConfig::cuckoo(100).entries(), 100);
        assert_eq!(DirConfig::full_map().entries(), usize::MAX);
    }

    #[test]
    fn with_repl_only_touches_set_assoc_kinds() {
        let c = DirConfig::stash(8, 2).with_repl(DirReplPolicy::Random);
        assert!(matches!(
            c.kind,
            DirKind::Stash {
                repl: DirReplPolicy::Random,
                ..
            }
        ));
        let c = DirConfig::cuckoo(8).with_repl(DirReplPolicy::Random);
        assert!(matches!(c.kind, DirKind::Cuckoo { .. }));
    }

    #[test]
    fn uses_stash_only_for_stash() {
        assert!(DirConfig::stash(8, 2).uses_stash());
        assert!(!DirConfig::sparse(8, 2).uses_stash());
        assert!(!DirConfig::full_map().uses_stash());
        assert!(!DirConfig::cuckoo(8).uses_stash());
    }

    #[test]
    fn build_produces_named_models() {
        for (cfg, name) in [
            (DirConfig::full_map(), "fullmap"),
            (DirConfig::sparse(8, 2), "sparse"),
            (DirConfig::stash(8, 2), "stash"),
            (DirConfig::cuckoo(32), "cuckoo"),
        ] {
            assert_eq!(cfg.build(1).name(), name);
            assert_eq!(cfg.name(), name);
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(DirConfig::sparse(8, 2).to_string(), "sparse(8x2,lru)");
        assert_eq!(
            DirConfig::stash(8, 2).to_string(),
            "stash(8x2,private-first-lru)"
        );
        assert_eq!(DirConfig::cuckoo(64).to_string(), "cuckoo(64,d=4,path=8)");
        assert_eq!(DirConfig::full_map().to_string(), "fullmap");
    }

    #[test]
    fn stats_merge_and_totals() {
        let mut a = DirStats::default();
        a.silent_evictions.add(3);
        let mut b = DirStats::default();
        b.invalidating_evictions.add(2);
        b.copies_invalidated.add(5);
        a.merge(&b);
        assert_eq!(a.total_evictions(), 5);
        assert_eq!(a.copies_invalidated.get(), 5);
    }

    #[test]
    fn stats_export_keys() {
        let mut sink = StatSink::new();
        DirStats::default().export("dir", &mut sink);
        assert_eq!(sink.get("dir.silent_evictions"), Some(0.0));
        assert_eq!(sink.get("dir.relocations"), Some(0.0));
        assert_eq!(sink.len(), 8);
    }

    #[test]
    fn eviction_action_is_none() {
        assert!(EvictionAction::None.is_none());
        assert!(!EvictionAction::Silent {
            block: BlockAddr::new(0),
            owner: CoreId::new(0)
        }
        .is_none());
    }
}
