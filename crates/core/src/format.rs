//! Sharer-set storage formats.
//!
//! A directory entry must represent "which cores hold this block". The
//! paper's design (and this crate's default) stores a **full-map** bit
//! vector: one bit per core, precise but `N` bits per entry. The classic
//! area-saving alternative is **limited pointers**: store up to `k`
//! explicit core ids (`k·log2 N` bits) and degrade to a conservative
//! *overflow* representation ("could be anyone") when a block gains a
//! `k+1`-th sharer — at which point exclusive requests must broadcast
//! invalidations.
//!
//! This module implements the *semantic* effect of the format — the
//! precision loss — so the simulator measures the broadcast cost, and
//! the bit accounting for experiment E15. It composes freely with the
//! stash mechanism: an overflowed entry is never private, so it is never
//! silently dropped.

use crate::cost::CostParams;
use serde::{Deserialize, Serialize};
use stashdir_common::{CoreId, SharerSet};
use stashdir_protocol::DirView;
use std::fmt;

/// How a directory entry encodes its sharers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SharerFormat {
    /// One presence bit per core: precise, `N` bits.
    #[default]
    FullMap,
    /// Up to `k` explicit pointers, `k·ceil(log2 N)` bits; more sharers
    /// degrade the entry to "all cores".
    LimitedPtr {
        /// Number of pointers stored per entry.
        k: usize,
    },
}

impl SharerFormat {
    /// Applies the format's precision loss to a view about to be stored.
    ///
    /// Full-map stores everything exactly. Limited pointers keep
    /// exclusive owners and up to `k` sharers exactly; beyond that the
    /// stored view becomes *every* core (so later invalidation rounds
    /// broadcast, which is precisely the cost the format trades for
    /// area).
    pub fn degrade(&self, view: DirView) -> DirView {
        match (self, &view) {
            (SharerFormat::FullMap, _) => view,
            (SharerFormat::LimitedPtr { k }, DirView::Shared(set)) if set.len() > *k => {
                let mut all = SharerSet::new(set.capacity());
                for c in 0..set.capacity() {
                    all.insert(CoreId::new(c));
                }
                DirView::Shared(all)
            }
            _ => view,
        }
    }

    /// Sharer-encoding bits per entry for `cores` trackable cores.
    pub fn sharer_bits(&self, cores: u16) -> u64 {
        match self {
            SharerFormat::FullMap => cores as u64,
            SharerFormat::LimitedPtr { k } => {
                let ptr_bits = (cores.max(2) as u64 - 1).ilog2() as u64 + 1;
                // +1 for the overflow flag.
                *k as u64 * ptr_bits + 1
            }
        }
    }

    /// Bits per directory entry under this format: tag + state + sharers.
    pub fn entry_bits(&self, params: &CostParams) -> u64 {
        params.tag_bits as u64 + CostParams::STATE_BITS + self.sharer_bits(params.cores)
    }
}

impl fmt::Display for SharerFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SharerFormat::FullMap => f.write_str("fullmap-vector"),
            SharerFormat::LimitedPtr { k } => write!(f, "ptr{k}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared(capacity: u16, cores: &[u16]) -> DirView {
        let mut s = SharerSet::new(capacity);
        s.extend(cores.iter().map(|&c| CoreId::new(c)));
        DirView::Shared(s)
    }

    #[test]
    fn fullmap_is_lossless() {
        let v = shared(16, &[1, 5, 9]);
        assert_eq!(SharerFormat::FullMap.degrade(v.clone()), v);
    }

    #[test]
    fn limited_ptr_keeps_small_sets_exact() {
        let fmt = SharerFormat::LimitedPtr { k: 2 };
        let v = shared(16, &[3, 7]);
        assert_eq!(fmt.degrade(v.clone()), v);
        let excl = DirView::Exclusive(CoreId::new(4));
        assert_eq!(fmt.degrade(excl.clone()), excl);
    }

    #[test]
    fn overflow_degrades_to_everyone() {
        let fmt = SharerFormat::LimitedPtr { k: 2 };
        match fmt.degrade(shared(8, &[0, 3, 5])) {
            DirView::Shared(set) => assert_eq!(set.len(), 8, "all cores"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn overflowed_views_are_never_private() {
        let fmt = SharerFormat::LimitedPtr { k: 1 };
        let degraded = fmt.degrade(shared(16, &[2, 9]));
        assert!(
            !degraded.is_private(),
            "stash must not hide overflow entries"
        );
    }

    #[test]
    fn sharer_bit_accounting() {
        assert_eq!(SharerFormat::FullMap.sharer_bits(64), 64);
        // 64 cores: 6-bit pointers; 4 pointers + overflow flag = 25.
        assert_eq!(SharerFormat::LimitedPtr { k: 4 }.sharer_bits(64), 25);
        assert_eq!(SharerFormat::LimitedPtr { k: 1 }.sharer_bits(16), 5);
        assert_eq!(SharerFormat::LimitedPtr { k: 1 }.sharer_bits(2), 2);
    }

    #[test]
    fn entry_bits_compose() {
        let params = CostParams {
            tag_bits: 30,
            cores: 64,
            llc_lines: 0,
        };
        assert_eq!(SharerFormat::FullMap.entry_bits(&params), 30 + 2 + 64);
        assert_eq!(
            SharerFormat::LimitedPtr { k: 2 }.entry_bits(&params),
            30 + 2 + 13
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(SharerFormat::FullMap.to_string(), "fullmap-vector");
        assert_eq!(SharerFormat::LimitedPtr { k: 4 }.to_string(), "ptr4");
    }
}
