//! The conventional sparse directory: the paper's baseline.
//!
//! A set-associative array of entries. When a set fills up, the victim's
//! cached copies — **all of them, private or shared** — must be
//! invalidated to preserve the directory-inclusion invariant. These forced
//! invalidations are exactly the cost the stash directory removes.

use crate::cost::CostParams;
use crate::format::SharerFormat;
use crate::model::{DirReplPolicy, DirStats, DirectoryModel, EvictionAction};
use crate::storage::DirStorage;
use stashdir_common::BlockAddr;
use stashdir_protocol::DirView;

/// A conventional sparse directory.
///
/// # Examples
///
/// ```
/// use stashdir_common::{BlockAddr, CoreId};
/// use stashdir_core::{DirReplPolicy, DirectoryModel, EvictionAction, SparseDirectory};
/// use stashdir_protocol::DirView;
///
/// let mut dir = SparseDirectory::new(1, 1, DirReplPolicy::Lru, 0);
/// dir.install(BlockAddr::new(1), DirView::Exclusive(CoreId::new(0)));
/// // The set is full; the next install forces an invalidating eviction
/// // even though the victim is private.
/// match dir.install(BlockAddr::new(2), DirView::Exclusive(CoreId::new(1))) {
///     EvictionAction::Invalidate { block, .. } => assert_eq!(block, BlockAddr::new(1)),
///     other => panic!("expected invalidation, got {other:?}"),
/// }
/// ```
#[derive(Debug)]
pub struct SparseDirectory {
    storage: DirStorage,
    repl: DirReplPolicy,
    format: SharerFormat,
    stats: DirStats,
}

impl SparseDirectory {
    /// Creates a sparse directory with `sets × ways` entries.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(sets: usize, ways: usize, repl: DirReplPolicy, seed: u64) -> Self {
        SparseDirectory {
            storage: DirStorage::new(sets, ways, seed),
            repl,
            format: SharerFormat::FullMap,
            stats: DirStats::default(),
        }
    }

    /// Selects the sharer-encoding format (default: precise full-map).
    /// Limited-pointer formats lose precision on wide sharing: stored
    /// views overflow to "all cores", making later invalidations
    /// broadcast.
    pub fn with_format(mut self, format: SharerFormat) -> Self {
        self.format = format;
        self
    }

    /// The victim-selection policy.
    pub fn repl(&self) -> DirReplPolicy {
        self.repl
    }
}

impl DirectoryModel for SparseDirectory {
    fn name(&self) -> &'static str {
        "sparse"
    }

    fn capacity(&self) -> usize {
        self.storage.capacity()
    }

    fn occupancy(&self) -> usize {
        self.storage.occupancy()
    }

    fn lookup(&self, block: BlockAddr) -> Option<DirView> {
        // Interior mutability would be needed to count through &self; the
        // counters are bumped by the &mut paths instead, so expose the raw
        // lookup here and account in install/remove callers.
        self.storage.lookup(block).cloned()
    }

    fn install(&mut self, block: BlockAddr, view: DirView) -> EvictionAction {
        assert!(
            view != DirView::Untracked,
            "install() takes a tracking view; use remove() to untrack"
        );
        self.stats.lookups.incr();
        let view = self.format.degrade(view);
        if self.storage.update(block, view.clone()) {
            self.stats.hits.incr();
            return EvictionAction::None;
        }
        self.stats.allocations.incr();
        let action = if self.storage.needs_victim(block) {
            let (victim, victim_view) = self.storage.choose_victim(block, self.repl);
            self.storage.remove(victim);
            self.stats.invalidating_evictions.incr();
            self.stats
                .copies_invalidated
                .add(victim_view.holders().len() as u64);
            if victim_view.is_private() {
                self.stats.private_victims_invalidated.incr();
            }
            EvictionAction::Invalidate {
                block: victim,
                view: victim_view,
            }
        } else {
            EvictionAction::None
        };
        self.storage.insert(block, view);
        action
    }

    fn remove(&mut self, block: BlockAddr) {
        self.storage.remove(block);
    }

    fn entries(&self) -> Vec<(BlockAddr, DirView)> {
        self.storage.entries()
    }

    fn stats(&self) -> &DirStats {
        &self.stats
    }

    fn storage_bits(&self, params: &CostParams) -> u64 {
        self.capacity() as u64 * self.format.entry_bits(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stashdir_common::{CoreId, SharerSet};

    fn excl(core: u16) -> DirView {
        DirView::Exclusive(CoreId::new(core))
    }

    fn shared(cores: &[u16]) -> DirView {
        let mut s = SharerSet::new(16);
        s.extend(cores.iter().map(|&c| CoreId::new(c)));
        DirView::Shared(s)
    }

    fn dir(sets: usize, ways: usize) -> SparseDirectory {
        SparseDirectory::new(sets, ways, DirReplPolicy::Lru, 0)
    }

    #[test]
    fn install_then_lookup() {
        let mut d = dir(4, 2);
        assert!(d.install(BlockAddr::new(1), excl(2)).is_none());
        assert_eq!(d.lookup(BlockAddr::new(1)), Some(excl(2)));
        assert_eq!(d.lookup(BlockAddr::new(9)), None);
    }

    #[test]
    fn update_existing_never_evicts() {
        let mut d = dir(1, 2);
        d.install(BlockAddr::new(0), excl(0));
        d.install(BlockAddr::new(1), excl(1));
        assert!(d.install(BlockAddr::new(0), shared(&[0, 3])).is_none());
        assert_eq!(d.occupancy(), 2);
        assert_eq!(d.lookup(BlockAddr::new(0)), Some(shared(&[0, 3])));
    }

    #[test]
    fn conflict_evicts_with_invalidation_always() {
        let mut d = dir(1, 1);
        d.install(BlockAddr::new(0), shared(&[1, 2, 3]));
        let action = d.install(BlockAddr::new(1), excl(0));
        assert_eq!(
            action,
            EvictionAction::Invalidate {
                block: BlockAddr::new(0),
                view: shared(&[1, 2, 3]),
            }
        );
        assert_eq!(d.stats().invalidating_evictions.get(), 1);
        assert_eq!(d.stats().copies_invalidated.get(), 3);
        assert_eq!(d.stats().silent_evictions.get(), 0);
    }

    #[test]
    fn private_victims_are_counted_as_missed_opportunity() {
        let mut d = dir(1, 1);
        d.install(BlockAddr::new(0), excl(5));
        d.install(BlockAddr::new(1), excl(6));
        assert_eq!(d.stats().private_victims_invalidated.get(), 1);
    }

    #[test]
    fn remove_untracks() {
        let mut d = dir(2, 2);
        d.install(BlockAddr::new(0), excl(0));
        d.remove(BlockAddr::new(0));
        assert_eq!(d.lookup(BlockAddr::new(0)), None);
        assert_eq!(d.occupancy(), 0);
        d.remove(BlockAddr::new(0)); // no-op
    }

    #[test]
    fn lru_victim_selection() {
        let mut d = dir(1, 2);
        d.install(BlockAddr::new(0), excl(0));
        d.install(BlockAddr::new(1), excl(1));
        d.install(BlockAddr::new(0), excl(0)); // refresh 0
        match d.install(BlockAddr::new(2), excl(2)) {
            EvictionAction::Invalidate { block, .. } => assert_eq!(block, BlockAddr::new(1)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn capacity_and_occupancy() {
        let mut d = dir(4, 2);
        assert_eq!(d.capacity(), 8);
        for i in 0..5 {
            d.install(BlockAddr::new(i), excl(0));
        }
        assert_eq!(d.occupancy(), 5);
        assert_eq!(d.entries().len(), 5);
    }

    #[test]
    #[should_panic(expected = "tracking view")]
    fn installing_untracked_panics() {
        dir(2, 2).install(BlockAddr::new(0), DirView::Untracked);
    }
}
