//! First-order directory storage cost model.
//!
//! The paper's headline claim is about **storage**: a stash directory with
//! 1/8 the entries of a conventional sparse directory matches its
//! performance. This module counts the bits so experiment E10 can report
//! the comparison. Dynamic energy is approximated elsewhere by event
//! counts (directory accesses, probes, broadcasts).

use serde::{Deserialize, Serialize};

/// Inputs to the bit-counting model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostParams {
    /// Address tag bits stored per entry.
    pub tag_bits: u32,
    /// Cores tracked by the full-map sharer vector.
    pub cores: u16,
    /// LLC lines chip-wide (for per-line costs: stash bits, in-LLC
    /// full-map entries).
    pub llc_lines: u64,
}

impl CostParams {
    /// Directory state bits per entry (encodes exclusive/shared plus
    /// bookkeeping).
    pub const STATE_BITS: u64 = 2;

    /// Bits per set-associative directory entry: tag + state + full-map
    /// sharer vector.
    pub fn bits_per_entry(&self) -> u64 {
        self.tag_bits as u64 + Self::STATE_BITS + self.cores as u64
    }

    /// Total bits for a tagged (sparse/stash/cuckoo) organization with
    /// `entries` entries, excluding per-LLC-line extras.
    pub fn set_assoc_bits(&self, entries: usize) -> u64 {
        entries as u64 * self.bits_per_entry()
    }

    /// Reasonable tag width for a directory slice: physical block-address
    /// bits minus the slice's set-index bits.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two.
    pub fn tag_bits_for(phys_addr_bits: u32, block_bytes: u64, sets: usize) -> u32 {
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        let block_bits = block_bytes.trailing_zeros();
        let index_bits = sets.trailing_zeros();
        phys_addr_bits
            .saturating_sub(block_bits)
            .saturating_sub(index_bits)
    }
}

impl Default for CostParams {
    /// 48-bit physical addresses with 64-byte blocks and a 16 MiB LLC:
    /// 42-bit block addresses, 16 cores, 256 Ki LLC lines.
    fn default() -> Self {
        CostParams {
            tag_bits: 30,
            cores: 16,
            llc_lines: 256 * 1024,
        }
    }
}

/// A first-order dynamic-energy model: each event class gets a fixed
/// energy weight (picojoules, loosely calibrated to 32 nm-era CACTI-class
/// numbers), and a run's dynamic energy is the weighted event sum. The
/// point is *relative* comparison between directory organizations on the
/// same run, not absolute joules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Directory slice lookup or update.
    pub dir_access_pj: f64,
    /// LLC bank data access.
    pub llc_access_pj: f64,
    /// DRAM access (read or write).
    pub dram_access_pj: f64,
    /// One flit traversing one link (router + channel).
    pub flit_hop_pj: f64,
    /// Private-cache probe handling (tag check + possible state write).
    pub probe_pj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            dir_access_pj: 5.0,
            llc_access_pj: 50.0,
            dram_access_pj: 2_000.0,
            flit_hop_pj: 2.5,
            probe_pj: 8.0,
        }
    }
}

/// Event counts feeding [`EnergyModel::dynamic_pj`], extracted from a
/// simulation report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyCounts {
    /// Directory lookups + installs.
    pub dir_accesses: u64,
    /// LLC hits + misses + writebacks.
    pub llc_accesses: u64,
    /// DRAM accesses.
    pub dram_accesses: u64,
    /// NoC flit-hops.
    pub flit_hops: u64,
    /// Probes delivered to private caches (forwards, invalidations,
    /// recalls, discovery probes).
    pub probes: u64,
}

impl EnergyModel {
    /// Total dynamic energy of a run, in picojoules.
    pub fn dynamic_pj(&self, counts: &EnergyCounts) -> f64 {
        counts.dir_accesses as f64 * self.dir_access_pj
            + counts.llc_accesses as f64 * self.llc_access_pj
            + counts.dram_accesses as f64 * self.dram_access_pj
            + counts.flit_hops as f64 * self.flit_hop_pj
            + counts.probes as f64 * self.probe_pj
    }

    /// Static-leakage proxy: storage bits are the dominant directory
    /// leakage term, so leakage compares as `storage_bits` does.
    pub fn leakage_proxy_bits(&self, storage_bits: u64) -> f64 {
        storage_bits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DirConfig;

    #[test]
    fn bits_per_entry_composition() {
        let p = CostParams {
            tag_bits: 30,
            cores: 16,
            llc_lines: 0,
        };
        assert_eq!(p.bits_per_entry(), 30 + 2 + 16);
        assert_eq!(p.set_assoc_bits(100), 4800);
    }

    #[test]
    fn tag_bits_shrink_with_more_sets() {
        assert_eq!(CostParams::tag_bits_for(48, 64, 1024), 48 - 6 - 10);
        assert_eq!(CostParams::tag_bits_for(48, 64, 1), 42);
    }

    #[test]
    fn stash_pays_one_bit_per_llc_line_over_sparse() {
        let p = CostParams {
            tag_bits: 30,
            cores: 16,
            llc_lines: 4096,
        };
        let sparse = DirConfig::sparse(64, 8).build(0);
        let stash = DirConfig::stash(64, 8).build(0);
        assert_eq!(stash.storage_bits(&p), sparse.storage_bits(&p) + 4096);
    }

    #[test]
    fn eighth_size_stash_is_far_smaller_despite_stash_bits() {
        // The headline arithmetic: a 1/8-entries stash directory costs
        // much less than the full-size sparse directory even after adding
        // one stash bit per LLC line.
        let p = CostParams::default();
        let sparse_full = DirConfig::sparse(2048, 8).build(0); // 16K entries
        let stash_eighth = DirConfig::stash(256, 8).build(0); // 2K entries
        let sparse_bits = sparse_full.storage_bits(&p);
        let stash_bits = stash_eighth.storage_bits(&p);
        assert!(
            (stash_bits as f64) < 0.5 * sparse_bits as f64,
            "stash {stash_bits} vs sparse {sparse_bits}"
        );
    }

    #[test]
    fn fullmap_cost_scales_with_llc() {
        let p = CostParams {
            tag_bits: 30,
            cores: 64,
            llc_lines: 1000,
        };
        let fm = DirConfig::full_map().build(0);
        assert_eq!(fm.storage_bits(&p), 1000 * 66);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn tag_bits_rejects_bad_sets() {
        CostParams::tag_bits_for(48, 64, 3);
    }

    #[test]
    fn energy_is_weighted_sum() {
        let m = EnergyModel {
            dir_access_pj: 1.0,
            llc_access_pj: 10.0,
            dram_access_pj: 100.0,
            flit_hop_pj: 0.5,
            probe_pj: 2.0,
        };
        let counts = EnergyCounts {
            dir_accesses: 3,
            llc_accesses: 2,
            dram_accesses: 1,
            flit_hops: 4,
            probes: 5,
        };
        assert!((m.dynamic_pj(&counts) - (3.0 + 20.0 + 100.0 + 2.0 + 10.0)).abs() < 1e-9);
    }

    #[test]
    fn default_energy_ranks_dram_highest() {
        let m = EnergyModel::default();
        assert!(m.dram_access_pj > m.llc_access_pj);
        assert!(m.llc_access_pj > m.dir_access_pj);
        assert_eq!(m.leakage_proxy_bits(1234), 1234.0);
    }

    #[test]
    fn zero_counts_zero_energy() {
        assert_eq!(
            EnergyModel::default().dynamic_pj(&EnergyCounts::default()),
            0.0
        );
    }
}
