//! The directory-backend registry: every organization the simulator can
//! build, as `name → factory` entries over [`DirectoryModel`].
//!
//! [`DirConfig::build`] resolves through this table, so adding a backend
//! is one [`BackendInfo`] row plus a [`DirKind`] arm — and sweeps can
//! *enumerate* the table ([`backends`]) to cover every organization
//! without hard-coding the list (the E18 shoot-out does exactly that).
//!
//! Note one deliberate asymmetry: `limited-ptr` is a registered backend
//! (it is a distinct organization in the experiments) but not a distinct
//! [`DirKind`] — it is the stash organization composed with a
//! limited-pointer [`SharerFormat`], and [`DirConfig::backend_name`]
//! resolves the composition to its registry name.
//!
//! [`DirConfig::build`]: crate::DirConfig::build
//! [`DirConfig::backend_name`]: crate::DirConfig::backend_name
//! [`DirKind`]: crate::DirKind
//! [`SharerFormat`]: crate::SharerFormat

use crate::model::{DirConfig, DirKind, DirectoryModel};

/// One registered directory backend.
#[derive(Clone, Copy)]
pub struct BackendInfo {
    /// Stable registry name (`"stash"`, `"dls"`, …) — also the kind name
    /// accepted by the sim layer's `DirSpec` parser.
    pub name: &'static str,
    /// One-line description for listings.
    pub summary: &'static str,
    /// Builds the model from a configuration whose
    /// [`backend_name`](DirConfig::backend_name) resolves to this entry.
    pub build: fn(&DirConfig, u64) -> Box<dyn DirectoryModel>,
}

impl std::fmt::Debug for BackendInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendInfo")
            .field("name", &self.name)
            .finish()
    }
}

/// Builds the set-associative stash model (shared by the `stash` and
/// `limited-ptr` entries, which differ only in sharer format).
fn build_stash(cfg: &DirConfig, seed: u64) -> Box<dyn DirectoryModel> {
    match cfg.kind {
        DirKind::Stash { sets, ways, repl } => {
            Box::new(crate::StashDirectory::new(sets, ways, repl, seed).with_format(cfg.format))
        }
        _ => unreachable!("stash factory got {:?}", cfg.kind),
    }
}

/// All registered backends, in suite order.
pub const BACKENDS: &[BackendInfo] = &[
    BackendInfo {
        name: "fullmap",
        summary: "unbounded ideal: one entry per tracked block, never evicts",
        build: |cfg, _seed| match cfg.kind {
            DirKind::FullMap => Box::new(crate::FullMapDirectory::new()),
            _ => unreachable!("fullmap factory got {:?}", cfg.kind),
        },
    },
    BackendInfo {
        name: "sparse",
        summary: "conventional set-associative; invalidates every victim copy",
        build: |cfg, seed| match cfg.kind {
            DirKind::Sparse { sets, ways, repl } => Box::new(
                crate::SparseDirectory::new(sets, ways, repl, seed).with_format(cfg.format),
            ),
            _ => unreachable!("sparse factory got {:?}", cfg.kind),
        },
    },
    BackendInfo {
        name: "stash",
        summary: "the paper's design: silent private-entry drops + discovery",
        build: build_stash,
    },
    BackendInfo {
        name: "limited-ptr",
        summary: "stash organization with limited-pointer sharer encoding",
        build: build_stash,
    },
    BackendInfo {
        name: "cuckoo",
        summary: "multi-hash baseline; relocates before invalidating",
        build: |cfg, seed| match cfg.kind {
            DirKind::Cuckoo {
                entries,
                hashes,
                max_path,
            } => Box::new(crate::CuckooDirectory::new(entries, hashes, max_path, seed)),
            _ => unreachable!("cuckoo factory got {:?}", cfg.kind),
        },
    },
    BackendInfo {
        name: "dls",
        summary: "directoryless: shared blocks become remote LLC accesses",
        build: |cfg, _seed| match cfg.kind {
            DirKind::Dls => Box::new(crate::DlsDirectory::new()),
            _ => unreachable!("dls factory got {:?}", cfg.kind),
        },
    },
    BackendInfo {
        name: "opaque",
        summary: "sparse shards placed by an opaque address→bank map",
        build: |cfg, seed| match cfg.kind {
            DirKind::Opaque { sets, ways, repl } => {
                Box::new(crate::OpaqueDirectory::new(sets, ways, repl, seed))
            }
            _ => unreachable!("opaque factory got {:?}", cfg.kind),
        },
    },
];

/// All registered backends, in suite order.
pub fn backends() -> &'static [BackendInfo] {
    BACKENDS
}

/// Looks up a backend by registry name.
pub fn resolve(name: &str) -> Option<&'static BackendInfo> {
    BACKENDS.iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::SharerFormat;

    #[test]
    fn names_are_unique_and_resolvable() {
        let mut names: Vec<_> = backends().iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), backends().len(), "duplicate backend name");
        for b in backends() {
            assert!(resolve(b.name).is_some());
        }
        assert!(resolve("nonsense").is_none());
    }

    #[test]
    fn every_entry_builds_a_model() {
        for (cfg, name) in [
            (DirConfig::full_map(), "fullmap"),
            (DirConfig::sparse(8, 2), "sparse"),
            (DirConfig::stash(8, 2), "stash"),
            (
                DirConfig::stash(8, 2).with_sharer_format(SharerFormat::LimitedPtr { k: 2 }),
                "limited-ptr",
            ),
            (DirConfig::cuckoo(32), "cuckoo"),
            (DirConfig::dls(), "dls"),
            (DirConfig::opaque(8, 2), "opaque"),
        ] {
            assert_eq!(cfg.backend_name(), name);
            let entry = resolve(name).expect("registered");
            let model = (entry.build)(&cfg, 7);
            // The model's self-reported name matches the registry except
            // for limited-ptr, which is the stash model in disguise.
            if name == "limited-ptr" {
                assert_eq!(model.name(), "stash");
            } else {
                assert_eq!(model.name(), name);
            }
        }
    }
}
