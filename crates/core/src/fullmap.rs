//! The ideal full-map directory: an entry for every tracked block, no
//! conflicts, no forced invalidations.
//!
//! Models a duplicate-tag or in-LLC directory with one entry per LLC line.
//! It is the performance upper bound the evaluation normalizes against: a
//! directory organization can at best match it.

use crate::cost::CostParams;
use crate::model::{DirStats, DirectoryModel, EvictionAction};
use stashdir_common::BlockAddr;
use stashdir_protocol::DirView;
use std::collections::HashMap;

/// An unbounded directory (never evicts).
///
/// # Examples
///
/// ```
/// use stashdir_common::{BlockAddr, CoreId};
/// use stashdir_core::{DirectoryModel, FullMapDirectory};
/// use stashdir_protocol::DirView;
///
/// let mut dir = FullMapDirectory::new();
/// for i in 0..1000 {
///     let act = dir.install(BlockAddr::new(i), DirView::Exclusive(CoreId::new(0)));
///     assert!(act.is_none()); // never evicts
/// }
/// assert_eq!(dir.occupancy(), 1000);
/// ```
#[derive(Debug, Default)]
pub struct FullMapDirectory {
    map: HashMap<BlockAddr, DirView>,
    stats: DirStats,
}

impl FullMapDirectory {
    /// Creates an empty full-map directory.
    pub fn new() -> Self {
        FullMapDirectory::default()
    }
}

impl DirectoryModel for FullMapDirectory {
    fn name(&self) -> &'static str {
        "fullmap"
    }

    fn capacity(&self) -> usize {
        usize::MAX
    }

    fn occupancy(&self) -> usize {
        self.map.len()
    }

    fn lookup(&self, block: BlockAddr) -> Option<DirView> {
        self.map.get(&block).cloned()
    }

    fn install(&mut self, block: BlockAddr, view: DirView) -> EvictionAction {
        assert!(
            view != DirView::Untracked,
            "install() takes a tracking view; use remove() to untrack"
        );
        self.stats.lookups.incr();
        if self.map.insert(block, view).is_some() {
            self.stats.hits.incr();
        } else {
            self.stats.allocations.incr();
        }
        EvictionAction::None
    }

    fn remove(&mut self, block: BlockAddr) {
        self.map.remove(&block);
    }

    fn entries(&self) -> Vec<(BlockAddr, DirView)> {
        let mut v: Vec<_> = self.map.iter().map(|(b, v)| (*b, v.clone())).collect();
        v.sort_by_key(|(b, _)| *b);
        v
    }

    fn stats(&self) -> &DirStats {
        &self.stats
    }

    fn storage_bits(&self, params: &CostParams) -> u64 {
        // One in-LLC entry per LLC line: no tag needed (co-indexed with
        // the LLC tags), state + sharer vector per line.
        params.llc_lines * (2 + params.cores as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stashdir_common::CoreId;

    fn excl(core: u16) -> DirView {
        DirView::Exclusive(CoreId::new(core))
    }

    #[test]
    fn never_evicts_and_tracks_everything() {
        let mut d = FullMapDirectory::new();
        for i in 0..100 {
            assert!(d
                .install(BlockAddr::new(i), excl((i % 16) as u16))
                .is_none());
        }
        assert_eq!(d.occupancy(), 100);
        assert_eq!(d.entries().len(), 100);
        assert_eq!(d.lookup(BlockAddr::new(42)), Some(excl(10)));
    }

    #[test]
    fn update_replaces_view() {
        let mut d = FullMapDirectory::new();
        d.install(BlockAddr::new(0), excl(1));
        d.install(BlockAddr::new(0), excl(2));
        assert_eq!(d.lookup(BlockAddr::new(0)), Some(excl(2)));
        assert_eq!(d.occupancy(), 1);
        assert_eq!(d.stats().hits.get(), 1);
        assert_eq!(d.stats().allocations.get(), 1);
    }

    #[test]
    fn remove_untracks() {
        let mut d = FullMapDirectory::new();
        d.install(BlockAddr::new(0), excl(1));
        d.remove(BlockAddr::new(0));
        assert_eq!(d.lookup(BlockAddr::new(0)), None);
    }

    #[test]
    fn storage_model_is_per_llc_line() {
        let d = FullMapDirectory::new();
        let params = CostParams {
            tag_bits: 20,
            cores: 16,
            llc_lines: 100,
        };
        assert_eq!(d.storage_bits(&params), 100 * 18);
    }

    #[test]
    #[should_panic(expected = "tracking view")]
    fn installing_untracked_panics() {
        FullMapDirectory::new().install(BlockAddr::new(0), DirView::Untracked);
    }
}
