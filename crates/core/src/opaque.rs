//! The opaque-distributed directory (related-work baseline): a
//! conventional set-associative directory whose entries are sharded
//! across LLC banks by an *opaque* (hash-like) address→bank map instead
//! of the home function.
//!
//! Decoupling directory placement from data placement spreads directory
//! load across banks, but a demand at a block's home bank must take an
//! extra indirection hop to the (generally different) bank holding the
//! entry, and the opaque map can still load banks unevenly. The machine
//! accounts both effects (`backend.indirection_hops`,
//! `backend.dir_bank_accesses` and the derived imbalance); this module
//! only provides the per-bank entry storage, which behaves exactly like a
//! sparse directory slice — on conflict, every copy of the victim is
//! invalidated.
//!
//! Entries here are keyed by **global** block addresses: a bank's shard
//! holds blocks the opaque map assigned to it, which are unrelated to the
//! bank's own home blocks, so the home-local address compression the
//! other organizations use does not apply.

use crate::cost::CostParams;
use crate::model::{DirReplPolicy, DirStats, DirectoryModel, EvictionAction};
use crate::sparse::SparseDirectory;
use stashdir_common::BlockAddr;
use stashdir_protocol::DirView;

/// One bank's shard of an opaque-distributed directory.
///
/// # Examples
///
/// ```
/// use stashdir_common::{BlockAddr, CoreId};
/// use stashdir_core::{DirReplPolicy, DirectoryModel, OpaqueDirectory};
/// use stashdir_protocol::DirView;
///
/// let mut dir = OpaqueDirectory::new(4, 2, DirReplPolicy::Lru, 0);
/// dir.install(BlockAddr::new(9), DirView::Exclusive(CoreId::new(1)));
/// assert_eq!(dir.name(), "opaque");
/// assert_eq!(dir.occupancy(), 1);
/// ```
#[derive(Debug)]
pub struct OpaqueDirectory {
    inner: SparseDirectory,
}

impl OpaqueDirectory {
    /// Creates an opaque directory shard with `sets × ways` entries.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(sets: usize, ways: usize, repl: DirReplPolicy, seed: u64) -> Self {
        OpaqueDirectory {
            inner: SparseDirectory::new(sets, ways, repl, seed),
        }
    }
}

impl DirectoryModel for OpaqueDirectory {
    fn name(&self) -> &'static str {
        "opaque"
    }

    fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    fn occupancy(&self) -> usize {
        self.inner.occupancy()
    }

    fn lookup(&self, block: BlockAddr) -> Option<DirView> {
        self.inner.lookup(block)
    }

    fn install(&mut self, block: BlockAddr, view: DirView) -> EvictionAction {
        self.inner.install(block, view)
    }

    fn remove(&mut self, block: BlockAddr) {
        self.inner.remove(block);
    }

    fn entries(&self) -> Vec<(BlockAddr, DirView)> {
        self.inner.entries()
    }

    fn stats(&self) -> &DirStats {
        self.inner.stats()
    }

    fn storage_bits(&self, params: &CostParams) -> u64 {
        self.inner.storage_bits(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stashdir_common::CoreId;

    fn excl(core: u16) -> DirView {
        DirView::Exclusive(CoreId::new(core))
    }

    #[test]
    fn behaves_like_sparse_on_conflict() {
        let mut d = OpaqueDirectory::new(1, 1, DirReplPolicy::Lru, 0);
        d.install(BlockAddr::new(0), excl(3));
        match d.install(BlockAddr::new(1), excl(4)) {
            EvictionAction::Invalidate { block, .. } => assert_eq!(block, BlockAddr::new(0)),
            other => panic!("expected invalidation, got {other:?}"),
        }
        assert_eq!(d.stats().invalidating_evictions.get(), 1);
    }

    #[test]
    fn global_keys_index_cleanly() {
        // Blocks whose low bits encode *other* banks' homes must still
        // store and look up fine — set indexing uses raw low bits.
        let mut d = OpaqueDirectory::new(4, 2, DirReplPolicy::Lru, 0);
        for b in [0u64, 1, 2, 1027] {
            d.install(BlockAddr::new(b), excl(0));
        }
        assert_eq!(d.occupancy(), 4);
        assert_eq!(d.lookup(BlockAddr::new(1027)), Some(excl(0)));
    }

    #[test]
    fn storage_matches_sparse_at_same_geometry() {
        let params = CostParams {
            tag_bits: 30,
            cores: 16,
            llc_lines: 1024,
        };
        let o = OpaqueDirectory::new(8, 4, DirReplPolicy::Lru, 0);
        let s = SparseDirectory::new(8, 4, DirReplPolicy::Lru, 0);
        assert_eq!(o.storage_bits(&params), s.storage_bits(&params));
    }
}
