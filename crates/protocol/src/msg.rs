//! The coherence message vocabulary and its NoC footprint.
//!
//! Sizes follow the usual convention: control messages are a single flit,
//! data-bearing messages carry a 64-byte block over a 16-byte-flit network
//! (1 head flit + 4 body flits).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Flits in a control (address-only) message.
pub const CONTROL_FLITS: u32 = 1;

/// Flits in a data-bearing message (64-byte block, 16-byte flits, plus a
/// head flit).
pub const DATA_FLITS: u32 = 5;

/// A request from a core to a block's home node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Request {
    /// Read miss: asks for a readable copy.
    GetS,
    /// Write miss: asks for an exclusive, writable copy.
    GetM,
    /// Write hit on a Shared copy: asks for ownership, data not needed.
    Upgrade,
    /// Eviction notice for a clean Shared copy.
    PutS,
    /// Eviction notice for a clean Exclusive copy.
    PutE,
    /// Eviction writeback of a dirty (Modified) copy; carries data.
    PutM,
}

impl Request {
    /// NoC size of the request message.
    pub const fn flits(self) -> u32 {
        match self {
            Request::PutM => DATA_FLITS,
            _ => CONTROL_FLITS,
        }
    }

    /// Traffic-accounting class.
    pub const fn class(self) -> &'static str {
        match self {
            Request::GetS | Request::GetM | Request::Upgrade => "req",
            Request::PutS | Request::PutE | Request::PutM => "wb",
        }
    }

    /// `true` for the demand misses that start a data-bearing transaction.
    pub const fn is_demand(self) -> bool {
        matches!(self, Request::GetS | Request::GetM | Request::Upgrade)
    }

    /// `true` for eviction notifications.
    pub const fn is_put(self) -> bool {
        !self.is_demand()
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Request::GetS => "GetS",
            Request::GetM => "GetM",
            Request::Upgrade => "Upgrade",
            Request::PutS => "PutS",
            Request::PutE => "PutE",
            Request::PutM => "PutM",
        };
        f.write_str(s)
    }
}

/// A probe from the home to a private cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Probe {
    /// Forwarded read: the owner must supply data and downgrade to Shared.
    FwdGetS,
    /// Forwarded write: the owner must supply data and invalidate.
    FwdGetM,
    /// Invalidate a Shared copy (exclusive request or directory eviction).
    Inv,
    /// Recall an Exclusive/Modified copy because the home is evicting its
    /// tracking state (conventional sparse directory eviction, or LLC
    /// eviction of the block). Dirty data is written back.
    Recall,
    /// Stash-directory discovery probe: "do you hold a hidden copy of this
    /// block?" Carries the intent so the holder transitions correctly.
    Discovery(DiscoveryIntent),
}

/// What a discovery round will do with the hidden copy once found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiscoveryIntent {
    /// Triggered by a GetS: the hidden owner downgrades to Shared.
    Share,
    /// Triggered by a GetM/Upgrade or an LLC eviction: the hidden owner
    /// invalidates.
    Invalidate,
}

impl Probe {
    /// NoC size of the probe message.
    pub const fn flits(self) -> u32 {
        CONTROL_FLITS
    }

    /// Traffic-accounting class.
    pub const fn class(self) -> &'static str {
        match self {
            Probe::FwdGetS | Probe::FwdGetM => "fwd",
            Probe::Inv | Probe::Recall => "inv",
            Probe::Discovery(_) => "discovery",
        }
    }
}

impl fmt::Display for Probe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Probe::FwdGetS => f.write_str("FwdGetS"),
            Probe::FwdGetM => f.write_str("FwdGetM"),
            Probe::Inv => f.write_str("Inv"),
            Probe::Recall => f.write_str("Recall"),
            Probe::Discovery(DiscoveryIntent::Share) => f.write_str("Discovery(S)"),
            Probe::Discovery(DiscoveryIntent::Invalidate) => f.write_str("Discovery(I)"),
        }
    }
}

/// A private cache's answer to a [`Probe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProbeReply {
    /// Acknowledgement without data (the copy was clean or absent).
    Ack,
    /// Acknowledgement carrying clean data (an E/S owner answering a
    /// forward; data travels to the requester and/or LLC).
    AckData,
    /// Acknowledgement carrying dirty data that must reach the requester
    /// and be written back to the LLC.
    AckDirtyData,
    /// Discovery response: no copy here.
    NotPresent,
}

impl ProbeReply {
    /// NoC size of the reply.
    pub const fn flits(self) -> u32 {
        match self {
            ProbeReply::AckData | ProbeReply::AckDirtyData => DATA_FLITS,
            ProbeReply::Ack | ProbeReply::NotPresent => CONTROL_FLITS,
        }
    }

    /// Traffic-accounting class.
    pub const fn class(self) -> &'static str {
        match self {
            ProbeReply::AckData | ProbeReply::AckDirtyData => "data",
            ProbeReply::Ack | ProbeReply::NotPresent => "ack",
        }
    }

    /// `true` when the reply carries the block.
    pub const fn has_data(self) -> bool {
        matches!(self, ProbeReply::AckData | ProbeReply::AckDirtyData)
    }
}

impl fmt::Display for ProbeReply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProbeReply::Ack => "Ack",
            ProbeReply::AckData => "AckData",
            ProbeReply::AckDirtyData => "AckDirtyData",
            ProbeReply::NotPresent => "NotPresent",
        };
        f.write_str(s)
    }
}

/// The permission granted by the home's data reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Grant {
    /// Readable copy; others may also hold it ([`PrivState::Shared`]).
    ///
    /// [`PrivState::Shared`]: crate::PrivState::Shared
    Shared,
    /// Exclusive readable copy, silently upgradable to Modified
    /// ([`PrivState::Exclusive`]).
    ///
    /// [`PrivState::Exclusive`]: crate::PrivState::Exclusive
    Exclusive,
    /// Writable copy ([`PrivState::Modified`]).
    ///
    /// [`PrivState::Modified`]: crate::PrivState::Modified
    Modified,
}

impl fmt::Display for Grant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Grant::Shared => "S",
            Grant::Exclusive => "E",
            Grant::Modified => "M",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_messages_are_bigger_than_control() {
        assert_eq!(Request::GetS.flits(), CONTROL_FLITS);
        assert_eq!(Request::PutM.flits(), DATA_FLITS);
        assert_eq!(Probe::Inv.flits(), CONTROL_FLITS);
        assert_eq!(ProbeReply::AckDirtyData.flits(), DATA_FLITS);
        assert_eq!(ProbeReply::Ack.flits(), CONTROL_FLITS);
    }

    #[test]
    fn classes_partition_the_vocabulary() {
        assert_eq!(Request::GetS.class(), "req");
        assert_eq!(Request::PutS.class(), "wb");
        assert_eq!(Probe::FwdGetM.class(), "fwd");
        assert_eq!(Probe::Recall.class(), "inv");
        assert_eq!(
            Probe::Discovery(DiscoveryIntent::Share).class(),
            "discovery"
        );
        assert_eq!(ProbeReply::NotPresent.class(), "ack");
        assert_eq!(ProbeReply::AckData.class(), "data");
    }

    #[test]
    fn demand_and_put_are_complementary() {
        for req in [
            Request::GetS,
            Request::GetM,
            Request::Upgrade,
            Request::PutS,
            Request::PutE,
            Request::PutM,
        ] {
            assert_ne!(req.is_demand(), req.is_put(), "{req}");
        }
    }

    #[test]
    fn has_data_matches_flit_size() {
        for reply in [
            ProbeReply::Ack,
            ProbeReply::AckData,
            ProbeReply::AckDirtyData,
            ProbeReply::NotPresent,
        ] {
            assert_eq!(reply.has_data(), reply.flits() == DATA_FLITS, "{reply}");
        }
    }

    #[test]
    fn displays_are_stable() {
        assert_eq!(Request::Upgrade.to_string(), "Upgrade");
        assert_eq!(
            Probe::Discovery(DiscoveryIntent::Invalidate).to_string(),
            "Discovery(I)"
        );
        assert_eq!(Grant::Exclusive.to_string(), "E");
    }
}
