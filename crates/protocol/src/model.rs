//! Reader for the lint protocol-model artifact
//! (`stashdir/protocol-model/v2`, also accepting the v1
//! transition-matrix shape): the per-section reachable
//! (row × column) transition sets the chaos-campaign driver diffs its
//! witnessed coverage against.
//!
//! A campaign run from a scratch checkout may not have the artifact on
//! disk yet; [`ReachableModel::builtin`] rebuilds the three protocol
//! sections from the in-crate model checker
//! ([`reachability::reachable_transitions`]) so the loop degrades to
//! the same reachable sets the lint would have emitted.

use crate::reachability;
use stashdir_common::json::Value;
use std::collections::{BTreeMap, BTreeSet};

/// Schema id of the v2 protocol-model artifact this reader targets.
pub const MODEL_SCHEMA_V2: &str = "stashdir/protocol-model/v2";
/// Schema id of the v1 transition-matrix artifact (same `sections`
/// shape; still accepted).
pub const MODEL_SCHEMA_V1: &str = "stashdir-lint/transition-matrix/v1";

/// Per-section reachable transition sets, keyed by section name
/// (`private_probe`, `local_access`, `home`, `fault_response`).
/// `BTreeMap`/`BTreeSet` keep iteration deterministic — coverage
/// artifacts are rendered straight from these sets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReachableModel {
    /// Section name → reachable (row, col) pairs.
    pub sections: BTreeMap<String, BTreeSet<(String, String)>>,
}

impl ReachableModel {
    /// Parses a protocol-model (or transition-matrix) artifact.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem: malformed
    /// JSON, an unknown schema id, or a section whose `reachable` list
    /// is not an array of `[row, col]` string pairs.
    pub fn parse(text: &str) -> Result<ReachableModel, String> {
        let value = Value::parse(text).map_err(|e| format!("malformed JSON: {e:?}"))?;
        let schema = value
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("missing `schema` string")?;
        if schema != MODEL_SCHEMA_V1 && schema != MODEL_SCHEMA_V2 {
            return Err(format!("unknown schema `{schema}`"));
        }
        let sections = value
            .get("sections")
            .and_then(Value::as_array)
            .ok_or("missing `sections` array")?;
        let mut model = ReachableModel::default();
        for (i, s) in sections.iter().enumerate() {
            let name = s
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("section {i} has no `name`"))?;
            let reachable = s
                .get("reachable")
                .and_then(Value::as_array)
                .ok_or_else(|| format!("section `{name}` has no `reachable` array"))?;
            let mut pairs = BTreeSet::new();
            for (j, pair) in reachable.iter().enumerate() {
                let fields = pair
                    .as_array()
                    .ok_or_else(|| format!("`{name}`.reachable[{j}] is not an array"))?;
                let (Some(row), Some(col), None) = (
                    fields.first().and_then(Value::as_str),
                    fields.get(1).and_then(Value::as_str),
                    fields.get(2),
                ) else {
                    return Err(format!(
                        "`{name}`.reachable[{j}] is not a [row, col] string pair"
                    ));
                };
                pairs.insert((row.to_string(), col.to_string()));
            }
            model.sections.insert(name.to_string(), pairs);
        }
        Ok(model)
    }

    /// The three protocol sections rebuilt from the in-crate model
    /// checker — the scratch-checkout fallback when no artifact exists.
    /// (The `fault_response` section describes the fault taxonomy, which
    /// lives above this crate; callers that need it add it themselves.)
    pub fn builtin() -> ReachableModel {
        let set = reachability::reachable_transitions();
        let mut model = ReachableModel::default();
        let own = |it: &mut dyn Iterator<Item = (&'static str, &'static str)>| {
            it.map(|(r, c)| (r.to_string(), c.to_string()))
                .collect::<BTreeSet<_>>()
        };
        model
            .sections
            .insert("private_probe".to_string(), own(&mut set.probe_pairs()));
        model
            .sections
            .insert("local_access".to_string(), own(&mut set.local_pairs()));
        model
            .sections
            .insert("home".to_string(), own(&mut set.home_pairs()));
        model
    }

    /// The reachable set of one section, empty when absent.
    pub fn section(&self, name: &str) -> BTreeSet<(String, String)> {
        self.sections.get(name).cloned().unwrap_or_default()
    }

    /// Total reachable pairs across all sections.
    pub fn total_reachable(&self) -> usize {
        self.sections.values().map(BTreeSet::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_matches_the_model_checker_counts() {
        let m = ReachableModel::builtin();
        assert_eq!(m.section("private_probe").len(), 19);
        assert_eq!(m.section("local_access").len(), 8);
        assert_eq!(m.section("home").len(), 14);
        assert_eq!(m.total_reachable(), 41);
    }

    #[test]
    fn parses_a_minimal_v2_artifact() {
        let text = r#"{
            "schema": "stashdir/protocol-model/v2",
            "sections": [
                {"name": "home", "reachable": [["GetS", "Untracked"], ["GetM", "Shared"]]}
            ]
        }"#;
        let m = ReachableModel::parse(text).expect("parse");
        assert_eq!(m.section("home").len(), 2);
        assert!(m
            .section("home")
            .contains(&("GetS".to_string(), "Untracked".to_string())));
        assert!(m.section("private_probe").is_empty());
    }

    #[test]
    fn rejects_unknown_schemas_and_malformed_pairs() {
        assert!(ReachableModel::parse("{").is_err());
        assert!(ReachableModel::parse(r#"{"schema": "bogus/v9", "sections": []}"#).is_err());
        let bad_pair = r#"{
            "schema": "stashdir/protocol-model/v2",
            "sections": [{"name": "home", "reachable": [["GetS"]]}]
        }"#;
        assert!(ReachableModel::parse(bad_pair).is_err());
    }
}
