//! The private-cache (coherence point: private L2) state machine.
//!
//! Pure transition functions: given a stable MESI state and an event
//! (local access, incoming probe, or data grant), they return the new
//! state and what must be sent. The simulator owns timing and queues.

use crate::msg::{DiscoveryIntent, Grant, Probe, ProbeReply, Request};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable MESI states of a block in a private cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrivState {
    /// Writable, dirty, sole copy.
    Modified,
    /// Readable, clean, sole copy; silently upgradable to Modified.
    Exclusive,
    /// Readable; other caches may hold copies.
    Shared,
    /// No valid copy (used for blocks absent from the cache too).
    Invalid,
}

impl PrivState {
    /// `true` when a local load can be served without a transaction.
    pub const fn can_read(self) -> bool {
        !matches!(self, PrivState::Invalid)
    }

    /// `true` when a local store can be served without a transaction
    /// (counting the silent E→M upgrade).
    pub const fn can_write(self) -> bool {
        matches!(self, PrivState::Modified | PrivState::Exclusive)
    }

    /// `true` when this cache holds the block's only copy.
    pub const fn is_exclusive(self) -> bool {
        matches!(self, PrivState::Modified | PrivState::Exclusive)
    }

    /// `true` when the copy differs from the LLC copy.
    pub const fn is_dirty(self) -> bool {
        matches!(self, PrivState::Modified)
    }
}

impl fmt::Display for PrivState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PrivState::Modified => "M",
            PrivState::Exclusive => "E",
            PrivState::Shared => "S",
            PrivState::Invalid => "I",
        };
        f.write_str(s)
    }
}

pub use stashdir_common::MemOpKind;

/// Result of attempting a local access against a block's current state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessOutcome {
    /// The access completes locally; the block moves to the given state
    /// (identical to the old state except for the silent E→M upgrade).
    Hit(PrivState),
    /// A transaction is required: send this request to the home.
    Miss(Request),
}

/// Attempts a local access: the cache-side half of the MESI table.
///
/// # Examples
///
/// ```
/// use stashdir_protocol::{local_access, AccessOutcome, MemOpKind, PrivState};
/// use stashdir_protocol::msg::Request;
///
/// // A store to an Exclusive copy silently upgrades to Modified.
/// assert_eq!(
///     local_access(PrivState::Exclusive, MemOpKind::Write),
///     AccessOutcome::Hit(PrivState::Modified),
/// );
/// // A store to a Shared copy needs an Upgrade transaction.
/// assert_eq!(
///     local_access(PrivState::Shared, MemOpKind::Write),
///     AccessOutcome::Miss(Request::Upgrade),
/// );
/// ```
pub fn local_access(state: PrivState, op: MemOpKind) -> AccessOutcome {
    use AccessOutcome::*;
    use MemOpKind::*;
    use PrivState::*;
    match (state, op) {
        (Modified, _) => Hit(Modified),
        (Exclusive, Read) => Hit(Exclusive),
        (Exclusive, Write) => Hit(Modified), // silent upgrade
        (Shared, Read) => Hit(Shared),
        (Shared, Write) => Miss(Request::Upgrade),
        (Invalid, Read) => Miss(Request::GetS),
        (Invalid, Write) => Miss(Request::GetM),
    }
}

/// The grant a demand request expects from the home (before any
/// E-on-uncached-read optimization the home may apply).
pub fn expected_state(grant: Grant) -> PrivState {
    match grant {
        Grant::Shared => PrivState::Shared,
        Grant::Exclusive => PrivState::Exclusive,
        Grant::Modified => PrivState::Modified,
    }
}

/// What a probe did to a private copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProbeEffect {
    /// The block's state after the probe.
    pub next: PrivState,
    /// The reply to send back (to the home and/or the requester).
    pub reply: ProbeReply,
}

/// Applies a probe to a block in `state`: the probe-side half of the MESI
/// table. Works for blocks the cache does not hold (`Invalid`), which
/// arises in races (the copy was evicted while the probe was in flight)
/// and in stash discovery rounds (stale stash bits).
///
/// # Examples
///
/// ```
/// use stashdir_protocol::{probe, PrivState, ProbeEffect};
/// use stashdir_protocol::msg::{Probe, ProbeReply};
///
/// // An Inv to a Shared copy invalidates and acks without data.
/// assert_eq!(
///     probe(PrivState::Shared, Probe::Inv),
///     ProbeEffect { next: PrivState::Invalid, reply: ProbeReply::Ack },
/// );
/// // A FwdGetS to a Modified owner downgrades it and extracts dirty data.
/// assert_eq!(
///     probe(PrivState::Modified, Probe::FwdGetS),
///     ProbeEffect { next: PrivState::Shared, reply: ProbeReply::AckDirtyData },
/// );
/// ```
pub fn probe(state: PrivState, probe: Probe) -> ProbeEffect {
    use PrivState::*;
    use Probe::*;
    use ProbeReply::*;
    let (next, reply) = match (state, probe) {
        // Forwarded reads: owner downgrades and supplies data.
        (Modified, FwdGetS) => (Shared, AckDirtyData),
        (Exclusive, FwdGetS) => (Shared, AckData),
        // Forwarded writes: owner invalidates and supplies data.
        (Modified, FwdGetM) => (Invalid, AckDirtyData),
        (Exclusive, FwdGetM) => (Invalid, AckData),
        // A Shared copy receiving a forward is a protocol bug (the
        // directory forwarded to a non-owner) *except* in eviction races,
        // where the old owner degraded. Treat as data-less ack; the home
        // falls back to the LLC copy, which is clean whenever no M copy
        // exists.
        (Shared, FwdGetS | FwdGetM) => (if probe == FwdGetS { Shared } else { Invalid }, Ack),
        (Invalid, FwdGetS | FwdGetM) => (Invalid, Ack),
        // Invalidations.
        (Modified, Inv | Recall) => (Invalid, AckDirtyData),
        (Exclusive, Inv | Recall) => (Invalid, AckData),
        (Shared, Inv | Recall) => (Invalid, Ack),
        (Invalid, Inv | Recall) => (Invalid, Ack),
        // Discovery probes. A hidden copy is usually E/M, but a silently
        // dropped single-sharer entry leaves a hidden *Shared* copy, which
        // must report presence too — otherwise the home would grant an
        // Exclusive copy while a stale S copy survives.
        (Modified, Discovery(DiscoveryIntent::Share)) => (Shared, AckDirtyData),
        (Exclusive, Discovery(DiscoveryIntent::Share)) => (Shared, AckData),
        (Shared, Discovery(DiscoveryIntent::Share)) => (Shared, AckData),
        (Modified, Discovery(DiscoveryIntent::Invalidate)) => (Invalid, AckDirtyData),
        (Exclusive, Discovery(DiscoveryIntent::Invalidate)) => (Invalid, AckData),
        // A hidden S copy is clean; invalidating it needs no data.
        (Shared, Discovery(DiscoveryIntent::Invalidate)) => (Invalid, Ack),
        (Invalid, Discovery(_)) => (Invalid, NotPresent),
    };
    ProbeEffect { next, reply }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_STATES: [PrivState; 4] = [
        PrivState::Modified,
        PrivState::Exclusive,
        PrivState::Shared,
        PrivState::Invalid,
    ];

    const ALL_PROBES: [Probe; 6] = [
        Probe::FwdGetS,
        Probe::FwdGetM,
        Probe::Inv,
        Probe::Recall,
        Probe::Discovery(DiscoveryIntent::Share),
        Probe::Discovery(DiscoveryIntent::Invalidate),
    ];

    #[test]
    fn reads_hit_in_any_valid_state() {
        for s in [PrivState::Modified, PrivState::Exclusive, PrivState::Shared] {
            assert_eq!(local_access(s, MemOpKind::Read), AccessOutcome::Hit(s));
        }
    }

    #[test]
    fn writes_hit_only_with_ownership() {
        assert_eq!(
            local_access(PrivState::Modified, MemOpKind::Write),
            AccessOutcome::Hit(PrivState::Modified)
        );
        assert_eq!(
            local_access(PrivState::Exclusive, MemOpKind::Write),
            AccessOutcome::Hit(PrivState::Modified)
        );
        assert!(matches!(
            local_access(PrivState::Shared, MemOpKind::Write),
            AccessOutcome::Miss(Request::Upgrade)
        ));
        assert!(matches!(
            local_access(PrivState::Invalid, MemOpKind::Write),
            AccessOutcome::Miss(Request::GetM)
        ));
    }

    #[test]
    fn invalid_reads_need_gets() {
        assert_eq!(
            local_access(PrivState::Invalid, MemOpKind::Read),
            AccessOutcome::Miss(Request::GetS)
        );
    }

    #[test]
    fn invalidating_probes_always_leave_invalid() {
        for s in ALL_STATES {
            for p in [Probe::FwdGetM, Probe::Inv, Probe::Recall] {
                // Shared + FwdGetM is a race case but still invalidates.
                assert_eq!(probe(s, p).next, PrivState::Invalid, "{s} {p}");
            }
        }
    }

    #[test]
    fn dirty_owners_always_surrender_data() {
        for p in ALL_PROBES {
            let eff = probe(PrivState::Modified, p);
            assert_eq!(eff.reply, ProbeReply::AckDirtyData, "{p}");
        }
    }

    #[test]
    fn clean_owners_supply_clean_data() {
        for p in [Probe::FwdGetS, Probe::FwdGetM, Probe::Inv, Probe::Recall] {
            assert_eq!(probe(PrivState::Exclusive, p).reply, ProbeReply::AckData);
        }
    }

    #[test]
    fn fwdgets_downgrades_owner_to_shared() {
        assert_eq!(
            probe(PrivState::Modified, Probe::FwdGetS).next,
            PrivState::Shared
        );
        assert_eq!(
            probe(PrivState::Exclusive, Probe::FwdGetS).next,
            PrivState::Shared
        );
    }

    #[test]
    fn probes_to_absent_blocks_are_tolerated() {
        for p in [Probe::FwdGetS, Probe::FwdGetM, Probe::Inv, Probe::Recall] {
            let eff = probe(PrivState::Invalid, p);
            assert_eq!(eff.next, PrivState::Invalid);
            assert_eq!(eff.reply, ProbeReply::Ack, "{p}: race ack carries no data");
        }
    }

    #[test]
    fn discovery_share_keeps_a_readable_copy_at_the_owner() {
        let eff = probe(
            PrivState::Modified,
            Probe::Discovery(DiscoveryIntent::Share),
        );
        assert_eq!(eff.next, PrivState::Shared);
        assert!(eff.reply.has_data());
    }

    #[test]
    fn discovery_invalidate_purges_the_owner() {
        for s in [PrivState::Modified, PrivState::Exclusive] {
            let eff = probe(s, Probe::Discovery(DiscoveryIntent::Invalidate));
            assert_eq!(eff.next, PrivState::Invalid);
            assert!(eff.reply.has_data());
        }
    }

    #[test]
    fn discovery_miss_only_on_truly_absent() {
        for intent in [DiscoveryIntent::Share, DiscoveryIntent::Invalidate] {
            let eff = probe(PrivState::Invalid, Probe::Discovery(intent));
            assert_eq!(eff.reply, ProbeReply::NotPresent);
            assert!(!eff.reply.has_data());
        }
    }

    #[test]
    fn hidden_shared_copy_reports_presence() {
        // A silently dropped single-sharer entry leaves a hidden S copy;
        // a Share-intent discovery must re-learn it (clean data reply).
        let eff = probe(PrivState::Shared, Probe::Discovery(DiscoveryIntent::Share));
        assert_eq!(eff.next, PrivState::Shared);
        assert_eq!(eff.reply, ProbeReply::AckData);
    }

    #[test]
    fn discovery_invalidate_also_clears_hidden_shared() {
        // An Invalidate-intent round (GetM or LLC eviction) purges a
        // hidden S copy; no data is needed because S copies are clean.
        let eff = probe(
            PrivState::Shared,
            Probe::Discovery(DiscoveryIntent::Invalidate),
        );
        assert_eq!(eff.next, PrivState::Invalid);
        assert_eq!(eff.reply, ProbeReply::Ack);
    }

    #[test]
    fn probe_table_is_total() {
        for s in ALL_STATES {
            for p in ALL_PROBES {
                let eff = probe(s, p);
                // No probe may ever *upgrade* a copy.
                let rank = |st: PrivState| match st {
                    PrivState::Modified => 3,
                    PrivState::Exclusive => 2,
                    PrivState::Shared => 1,
                    PrivState::Invalid => 0,
                };
                assert!(
                    rank(eff.next) <= rank(s),
                    "{s} {p} upgraded to {}",
                    eff.next
                );
            }
        }
    }

    #[test]
    fn expected_state_maps_grants() {
        assert_eq!(expected_state(Grant::Shared), PrivState::Shared);
        assert_eq!(expected_state(Grant::Exclusive), PrivState::Exclusive);
        assert_eq!(expected_state(Grant::Modified), PrivState::Modified);
    }

    #[test]
    fn state_predicates() {
        assert!(PrivState::Modified.can_write() && PrivState::Modified.is_dirty());
        assert!(PrivState::Exclusive.can_write() && !PrivState::Exclusive.is_dirty());
        assert!(PrivState::Shared.can_read() && !PrivState::Shared.can_write());
        assert!(!PrivState::Invalid.can_read());
        assert!(PrivState::Exclusive.is_exclusive() && !PrivState::Shared.is_exclusive());
    }

    #[test]
    fn displays_are_single_letters() {
        assert_eq!(PrivState::Modified.to_string(), "M");
        assert_eq!(MemOpKind::Write.to_string(), "W");
    }
}
