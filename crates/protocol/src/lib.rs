//! The MESI directory coherence protocol used by the Stash Directory
//! reproduction.
//!
//! This crate is deliberately **pure**: it defines the message vocabulary,
//! the private-cache (L2) state machine, and the home-node decision
//! function, all as data-in/data-out logic with no timing, no queues and no
//! I/O. The [`stashdir-sim`] crate executes these decisions with timing
//! over the NoC; this crate is where protocol *correctness* lives and is
//! exhaustively unit- and property-tested.
//!
//! # Protocol overview
//!
//! * Private caches keep blocks in MESI states ([`PrivState`]).
//! * A block's **home** is the LLC bank + directory slice its address maps
//!   to. Cores send [`Request`]s to the home; the home consults the
//!   directory and answers with data, possibly after probing other cores
//!   ([`Probe`]) and collecting [`ProbeReply`]s.
//! * The home serializes transactions per block, so the decision function
//!   ([`home::decide`]) sees a consistent directory view.
//! * The **stash** extension adds one probe ([`Probe::Discovery`]) and the
//!   home-side rule that a directory miss with the LLC *stash bit* set must
//!   run a discovery round before the request can be answered.
//!
//! [`stashdir-sim`]: https://docs.rs/stashdir-sim

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod home;
pub mod model;
pub mod msg;
pub mod private;
pub mod reachability;

pub use home::{
    decide, decide_put, discovery_intent, discovery_targets, needs_discovery, DirView, PutOutcome,
    RequestOutcome,
};
pub use msg::{DiscoveryIntent, Grant, Probe, ProbeReply, Request, CONTROL_FLITS, DATA_FLITS};
pub use private::{local_access, probe, AccessOutcome, MemOpKind, PrivState, ProbeEffect};
