//! The home-node (LLC bank + directory slice) decision logic.
//!
//! [`decide`] answers: given a demand request and the directory's current
//! knowledge of a block, which probes must be sent, what permission is
//! granted, and what the directory should record afterwards. [`decide_put`]
//! handles eviction notifications, including the stale-put races that
//! per-block serialization leaves possible. Both are pure functions; the
//! simulator executes their output with timing.
//!
//! The stash directory adds exactly one decision here: a request that
//! misses in the directory while the LLC line's *stash bit* is set must
//! first run a **discovery** round ([`needs_discovery`]); the round's
//! result upgrades the home's knowledge, after which [`decide`] applies
//! unchanged.

use crate::msg::{DiscoveryIntent, Grant, Probe, Request};
use serde::{Deserialize, Serialize};
use stashdir_common::{CoreId, SharerSet};
use std::fmt;

/// What the directory knows about a block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DirView {
    /// No directory entry: as far as tracking goes, no private cache holds
    /// the block. (Under the stash directory this may be a lie — see
    /// [`needs_discovery`].)
    Untracked,
    /// One private cache holds the block in E or M.
    Exclusive(CoreId),
    /// The listed caches hold the block in S.
    Shared(SharerSet),
}

impl DirView {
    /// `true` when exactly one core is known to hold the block — the
    /// *private block* predicate that decides stash-eviction safety.
    pub fn is_private(&self) -> bool {
        match self {
            DirView::Exclusive(_) => true,
            DirView::Shared(set) => set.len() == 1,
            DirView::Untracked => false,
        }
    }

    /// Every core the view names.
    pub fn holders(&self) -> Vec<CoreId> {
        match self {
            DirView::Untracked => Vec::new(),
            DirView::Exclusive(owner) => vec![*owner],
            DirView::Shared(set) => set.iter().collect(),
        }
    }
}

impl fmt::Display for DirView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DirView::Untracked => f.write_str("Untracked"),
            DirView::Exclusive(owner) => write!(f, "Excl({owner})"),
            DirView::Shared(set) => write!(f, "Shared{set}"),
        }
    }
}

/// The home's plan for one demand request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestOutcome {
    /// Probes to deliver (and collect replies for) before granting.
    pub probes: Vec<(CoreId, Probe)>,
    /// Permission granted to the requester once probes complete.
    pub grant: Grant,
    /// What the directory records afterwards, in the common (race-free)
    /// case. The simulator reconciles against actual probe replies when an
    /// owner turns out to have evicted concurrently.
    pub new_view: DirView,
    /// `true` when the freshest data comes from the probed owner rather
    /// than the LLC.
    pub data_from_owner: bool,
    /// `false` for ownership upgrades where the requester already holds
    /// the data and only needs permission.
    pub needs_data: bool,
}

/// Plans a demand request (`GetS`, `GetM` or `Upgrade`).
///
/// `capacity` is the number of cores (sizes fresh sharer sets).
///
/// # Panics
///
/// Panics if called with a `Put*` request — evictions go through
/// [`decide_put`].
///
/// # Examples
///
/// ```
/// use stashdir_common::CoreId;
/// use stashdir_protocol::home::{decide, DirView};
/// use stashdir_protocol::msg::{Grant, Request};
///
/// // A read miss on an untracked block grants Exclusive (no sharers to
/// // disturb, and the common private case avoids a later Upgrade).
/// let out = decide(Request::GetS, CoreId::new(2), &DirView::Untracked, 16);
/// assert_eq!(out.grant, Grant::Exclusive);
/// assert!(out.probes.is_empty());
/// assert_eq!(out.new_view, DirView::Exclusive(CoreId::new(2)));
/// ```
pub fn decide(req: Request, requester: CoreId, view: &DirView, capacity: u16) -> RequestOutcome {
    match req {
        Request::GetS => decide_gets(requester, view, capacity),
        Request::GetM | Request::Upgrade => decide_getm(req, requester, view, capacity),
        other => panic!("decide() only handles demand requests, got {other}"),
    }
}

fn decide_gets(requester: CoreId, view: &DirView, capacity: u16) -> RequestOutcome {
    match view {
        DirView::Untracked => RequestOutcome {
            probes: Vec::new(),
            // E-grant on uncached read: the dominant private-data pattern
            // the stash directory exploits.
            grant: Grant::Exclusive,
            new_view: DirView::Exclusive(requester),
            data_from_owner: false,
            needs_data: true,
        },
        DirView::Exclusive(owner) if *owner == requester => {
            // The tracked owner is asking again: it silently dropped a
            // clean copy (possible when eviction notices are disabled).
            // Re-grant exclusively; no probes needed.
            RequestOutcome {
                probes: Vec::new(),
                grant: Grant::Exclusive,
                new_view: DirView::Exclusive(requester),
                data_from_owner: false,
                needs_data: true,
            }
        }
        DirView::Exclusive(owner) => {
            let mut sharers = SharerSet::singleton(capacity, *owner);
            sharers.insert(requester);
            RequestOutcome {
                probes: vec![(*owner, Probe::FwdGetS)],
                grant: Grant::Shared,
                new_view: DirView::Shared(sharers),
                data_from_owner: true,
                needs_data: true,
            }
        }
        DirView::Shared(set) => {
            let mut sharers = set.clone();
            sharers.insert(requester);
            RequestOutcome {
                probes: Vec::new(),
                grant: Grant::Shared,
                new_view: DirView::Shared(sharers),
                data_from_owner: false,
                needs_data: true,
            }
        }
    }
}

fn decide_getm(req: Request, requester: CoreId, view: &DirView, capacity: u16) -> RequestOutcome {
    let _ = capacity;
    match view {
        DirView::Untracked => RequestOutcome {
            probes: Vec::new(),
            grant: Grant::Modified,
            new_view: DirView::Exclusive(requester),
            data_from_owner: false,
            // An Upgrade that raced to Untracked lost its copy to a
            // directory eviction; it needs data again.
            needs_data: true,
        },
        DirView::Exclusive(owner) if *owner == requester => RequestOutcome {
            probes: Vec::new(),
            grant: Grant::Modified,
            new_view: DirView::Exclusive(requester),
            needs_data: req != Request::Upgrade,
            data_from_owner: false,
        },
        DirView::Exclusive(owner) => RequestOutcome {
            probes: vec![(*owner, Probe::FwdGetM)],
            grant: Grant::Modified,
            new_view: DirView::Exclusive(requester),
            data_from_owner: true,
            needs_data: true,
        },
        DirView::Shared(set) => {
            let requester_has_copy = set.contains(requester);
            let probes = set
                .iter()
                .filter(|&c| c != requester)
                .map(|c| (c, Probe::Inv))
                .collect();
            RequestOutcome {
                probes,
                grant: Grant::Modified,
                new_view: DirView::Exclusive(requester),
                data_from_owner: false,
                // An Upgrade whose copy survived needs no data; a raced
                // Upgrade (copy already invalidated) or plain GetM does.
                needs_data: !(req == Request::Upgrade && requester_has_copy),
            }
        }
    }
}

/// The home's verdict on an eviction notification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PutOutcome {
    /// The put matches the directory's knowledge.
    Accept {
        /// What the directory records afterwards.
        new_view: DirView,
        /// `true` when the put carried dirty data that must be written to
        /// the LLC.
        writeback: bool,
    },
    /// The put lost a race (ownership already moved); acknowledge and
    /// discard — **including its data**, which is stale by definition.
    Stale,
}

/// Plans an eviction notification (`PutS`, `PutE` or `PutM`).
///
/// # Panics
///
/// Panics if called with a demand request.
///
/// # Examples
///
/// ```
/// use stashdir_common::CoreId;
/// use stashdir_protocol::home::{decide_put, DirView, PutOutcome};
/// use stashdir_protocol::msg::Request;
///
/// let owner = CoreId::new(1);
/// let out = decide_put(Request::PutM, owner, &DirView::Exclusive(owner));
/// assert_eq!(
///     out,
///     PutOutcome::Accept { new_view: DirView::Untracked, writeback: true },
/// );
/// // The same put after ownership moved is stale.
/// let raced = decide_put(Request::PutM, owner, &DirView::Exclusive(CoreId::new(2)));
/// assert_eq!(raced, PutOutcome::Stale);
/// ```
pub fn decide_put(req: Request, from: CoreId, view: &DirView) -> PutOutcome {
    match req {
        Request::PutS => match view {
            DirView::Shared(set) if set.contains(from) => {
                let mut rest = set.clone();
                rest.remove(from);
                let new_view = if rest.is_empty() {
                    DirView::Untracked
                } else {
                    DirView::Shared(rest)
                };
                PutOutcome::Accept {
                    new_view,
                    writeback: false,
                }
            }
            _ => PutOutcome::Stale,
        },
        Request::PutE | Request::PutM => match view {
            DirView::Exclusive(owner) if *owner == from => PutOutcome::Accept {
                new_view: DirView::Untracked,
                writeback: req == Request::PutM,
            },
            _ => PutOutcome::Stale,
        },
        other => panic!("decide_put() only handles evictions, got {other}"),
    }
}

/// `true` when the home must run a discovery round before it can serve a
/// request: the directory has no entry, but the LLC remembers (via the
/// stash bit) that an entry tracking a private copy was silently dropped.
pub fn needs_discovery(view: &DirView, stash_bit: bool) -> bool {
    stash_bit && *view == DirView::Untracked
}

/// The probe set for a discovery round: every core except `exclude` (the
/// requester cannot be the hidden owner — it just missed).
pub fn discovery_targets(num_cores: u16, exclude: Option<CoreId>) -> Vec<CoreId> {
    (0..num_cores)
        .map(CoreId::new)
        .filter(|&c| Some(c) != exclude)
        .collect()
}

/// The discovery intent implied by the triggering request.
pub fn discovery_intent(req: Request) -> DiscoveryIntent {
    match req {
        Request::GetS => DiscoveryIntent::Share,
        _ => DiscoveryIntent::Invalidate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(i: u16) -> CoreId {
        CoreId::new(i)
    }

    fn shared(cores: &[u16]) -> DirView {
        let mut set = SharerSet::new(16);
        set.extend(cores.iter().map(|&c| core(c)));
        DirView::Shared(set)
    }

    #[test]
    fn gets_untracked_grants_exclusive() {
        let out = decide(Request::GetS, core(0), &DirView::Untracked, 16);
        assert_eq!(out.grant, Grant::Exclusive);
        assert!(out.probes.is_empty());
        assert!(!out.data_from_owner);
        assert!(out.needs_data);
    }

    #[test]
    fn gets_on_owned_block_forwards_to_owner() {
        let out = decide(Request::GetS, core(0), &DirView::Exclusive(core(3)), 16);
        assert_eq!(out.probes, vec![(core(3), Probe::FwdGetS)]);
        assert_eq!(out.grant, Grant::Shared);
        assert!(out.data_from_owner);
        assert_eq!(out.new_view, shared(&[0, 3]));
    }

    #[test]
    fn gets_on_shared_block_serves_from_llc() {
        let out = decide(Request::GetS, core(5), &shared(&[1, 2]), 16);
        assert!(out.probes.is_empty());
        assert_eq!(out.grant, Grant::Shared);
        assert_eq!(out.new_view, shared(&[1, 2, 5]));
    }

    #[test]
    fn gets_from_stale_owner_regrants() {
        // Silent-eviction mode: the tracked owner itself misses again.
        let out = decide(Request::GetS, core(4), &DirView::Exclusive(core(4)), 16);
        assert!(out.probes.is_empty());
        assert_eq!(out.grant, Grant::Exclusive);
        assert_eq!(out.new_view, DirView::Exclusive(core(4)));
    }

    #[test]
    fn getm_untracked_grants_modified() {
        let out = decide(Request::GetM, core(0), &DirView::Untracked, 16);
        assert_eq!(out.grant, Grant::Modified);
        assert!(out.probes.is_empty());
        assert_eq!(out.new_view, DirView::Exclusive(core(0)));
    }

    #[test]
    fn getm_on_owned_block_forwards_invalidating() {
        let out = decide(Request::GetM, core(0), &DirView::Exclusive(core(7)), 16);
        assert_eq!(out.probes, vec![(core(7), Probe::FwdGetM)]);
        assert!(out.data_from_owner);
        assert_eq!(out.new_view, DirView::Exclusive(core(0)));
    }

    #[test]
    fn getm_on_shared_block_invalidates_everyone_else() {
        let out = decide(Request::GetM, core(1), &shared(&[1, 2, 9]), 16);
        let mut targets: Vec<u16> = out.probes.iter().map(|(c, _)| c.get()).collect();
        targets.sort_unstable();
        assert_eq!(targets, vec![2, 9]);
        assert!(out.probes.iter().all(|&(_, p)| p == Probe::Inv));
        assert_eq!(out.new_view, DirView::Exclusive(core(1)));
    }

    #[test]
    fn upgrade_with_live_copy_needs_no_data() {
        let out = decide(Request::Upgrade, core(1), &shared(&[1, 2]), 16);
        assert!(!out.needs_data);
        assert_eq!(out.grant, Grant::Modified);
        assert_eq!(out.probes.len(), 1);
    }

    #[test]
    fn upgrade_that_lost_its_copy_needs_data() {
        // The requester was invalidated while its Upgrade was in flight:
        // the sharer set no longer contains it.
        let out = decide(Request::Upgrade, core(1), &shared(&[2]), 16);
        assert!(out.needs_data);
        // And when the whole entry vanished:
        let out = decide(Request::Upgrade, core(1), &DirView::Untracked, 16);
        assert!(out.needs_data);
        assert_eq!(out.grant, Grant::Modified);
    }

    #[test]
    fn upgrade_from_sole_owner_is_permission_only() {
        let out = decide(Request::Upgrade, core(6), &DirView::Exclusive(core(6)), 16);
        assert!(!out.needs_data);
        assert!(out.probes.is_empty());
    }

    #[test]
    fn puts_removes_one_sharer() {
        let out = decide_put(Request::PutS, core(2), &shared(&[1, 2]));
        assert_eq!(
            out,
            PutOutcome::Accept {
                new_view: shared(&[1]),
                writeback: false
            }
        );
    }

    #[test]
    fn puts_of_last_sharer_untracks() {
        let out = decide_put(Request::PutS, core(1), &shared(&[1]));
        assert_eq!(
            out,
            PutOutcome::Accept {
                new_view: DirView::Untracked,
                writeback: false
            }
        );
    }

    #[test]
    fn pute_untracks_without_writeback() {
        let out = decide_put(Request::PutE, core(1), &DirView::Exclusive(core(1)));
        assert_eq!(
            out,
            PutOutcome::Accept {
                new_view: DirView::Untracked,
                writeback: false
            }
        );
    }

    #[test]
    fn stale_puts_are_dropped() {
        assert_eq!(
            decide_put(Request::PutS, core(9), &shared(&[1, 2])),
            PutOutcome::Stale
        );
        assert_eq!(
            decide_put(Request::PutM, core(1), &DirView::Untracked),
            PutOutcome::Stale
        );
        assert_eq!(
            decide_put(Request::PutE, core(1), &shared(&[1])),
            PutOutcome::Stale,
            "an E-put against a shared view lost a FwdGetS race"
        );
    }

    #[test]
    fn discovery_only_when_untracked_and_stashed() {
        assert!(needs_discovery(&DirView::Untracked, true));
        assert!(!needs_discovery(&DirView::Untracked, false));
        assert!(!needs_discovery(&DirView::Exclusive(core(0)), true));
        assert!(!needs_discovery(&shared(&[1]), true));
    }

    #[test]
    fn discovery_targets_exclude_requester() {
        let targets = discovery_targets(4, Some(core(2)));
        let raw: Vec<u16> = targets.iter().map(|c| c.get()).collect();
        assert_eq!(raw, vec![0, 1, 3]);
        assert_eq!(discovery_targets(3, None).len(), 3);
    }

    #[test]
    fn discovery_intent_tracks_request() {
        assert_eq!(discovery_intent(Request::GetS), DiscoveryIntent::Share);
        assert_eq!(discovery_intent(Request::GetM), DiscoveryIntent::Invalidate);
        assert_eq!(
            discovery_intent(Request::Upgrade),
            DiscoveryIntent::Invalidate
        );
    }

    #[test]
    fn is_private_predicate() {
        assert!(DirView::Exclusive(core(0)).is_private());
        assert!(shared(&[3]).is_private());
        assert!(!shared(&[3, 4]).is_private());
        assert!(!DirView::Untracked.is_private());
    }

    #[test]
    fn holders_lists_view_members() {
        assert!(DirView::Untracked.holders().is_empty());
        assert_eq!(DirView::Exclusive(core(3)).holders(), vec![core(3)]);
        assert_eq!(shared(&[1, 4]).holders(), vec![core(1), core(4)]);
    }

    #[test]
    #[should_panic(expected = "only handles demand")]
    fn decide_rejects_puts() {
        decide(Request::PutM, core(0), &DirView::Untracked, 16);
    }

    #[test]
    #[should_panic(expected = "only handles evictions")]
    fn decide_put_rejects_demands() {
        decide_put(Request::GetS, core(0), &DirView::Untracked);
    }

    #[test]
    fn display_renders_views() {
        assert_eq!(DirView::Untracked.to_string(), "Untracked");
        assert_eq!(DirView::Exclusive(core(2)).to_string(), "Excl(core2)");
        assert_eq!(shared(&[1, 2]).to_string(), "Shared{1,2}");
    }
}
