//! Exhaustive reachability exploration of the protocol decision layer.
//!
//! Explores, by breadth-first search, **every reachable state** of a
//! 3-core single-block abstract machine driven by the crate's pure
//! decision functions (`local_access`, `probe`, `decide`, `decide_put`,
//! `needs_discovery`), under both the conventional sparse and the stash
//! eviction disciplines, with and without clean-eviction notification.
//!
//! The abstraction: transactions are atomic (exactly the serialization
//! the simulator's home nodes enforce), and data is tracked as a
//! *freshness bit* per location (a write makes the writer's copy the only
//! fresh one; transfers copy freshness from the source). The checked
//! properties are:
//!
//! * **Single writer**: at most one E/M copy; E/M excludes other copies.
//! * **Grant freshness**: every read/write transaction hands the
//!   requester *fresh* data — stale grants are exactly the bugs a broken
//!   stash/discovery design would introduce.
//! * **Coverage**: every valid copy is directory-tracked, or hidden
//!   under the stash bit (stash mode only).
//! * **Reachability**: some location (copy, LLC, or memory) always holds
//!   fresh data — no lost writes.
//!
//! In-flight races (writeback buffers, message overtaking) are the
//! simulator's concern and are fuzzed there; this module nails down the
//! *decision layer* exhaustively.
//!
//! Beyond checking, the explorer **records every decision-layer
//! transition it exercises** — each `(PrivState, Probe)` pair fed to
//! [`probe`], each `(PrivState, MemOpKind)` pair fed to [`local_access`],
//! and each `(Request, DirView-kind)` pair fed to [`decide`] /
//! [`decide_put`] — as a [`TransitionSet`] of canonical labels. The
//! `stashdir-lint` static-analysis pass diffs this *reachable* set
//! against the match arms it extracts from this crate's source, flagging
//! both uncovered reachable transitions and dead handler arms.

// lint: allow-file(indexing) — the abstract machine is a fixed [CoreSt; 3]
// array indexed by core numbers from `0..CORES` loops, in bounds by
// construction; this module is model checking, not the simulator hot path.

use crate::home::{decide, decide_put, discovery_intent, needs_discovery, DirView, PutOutcome};
use crate::msg::{DiscoveryIntent, Grant, Probe, Request};
use crate::private::{local_access, probe, AccessOutcome, MemOpKind, PrivState};
use stashdir_common::{CoreId, SharerSet};
use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};

const N: usize = 3;

/// One exploration configuration: eviction discipline × notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mode {
    /// `true` for the stash directory (silent private-entry eviction plus
    /// discovery); `false` for a conventional sparse directory.
    pub stash_dir: bool,
    /// `true` when private caches notify the home of clean evictions.
    pub notify_clean: bool,
}

/// The four mode combinations the simulator supports.
pub const ALL_MODES: [Mode; 4] = [
    Mode {
        stash_dir: true,
        notify_clean: true,
    },
    Mode {
        stash_dir: true,
        notify_clean: false,
    },
    Mode {
        stash_dir: false,
        notify_clean: true,
    },
    Mode {
        stash_dir: false,
        notify_clean: false,
    },
];

/// Canonical label for a private-cache state, matching the variant
/// identifier in the source (`Modified`, `Exclusive`, `Shared`,
/// `Invalid`).
pub fn state_label(state: PrivState) -> &'static str {
    match state {
        PrivState::Modified => "Modified",
        PrivState::Exclusive => "Exclusive",
        PrivState::Shared => "Shared",
        PrivState::Invalid => "Invalid",
    }
}

/// Canonical label for a probe, matching the variant identifier in the
/// source; discovery probes carry their intent (`Discovery(Share)`).
pub fn probe_label(p: Probe) -> &'static str {
    match p {
        Probe::FwdGetS => "FwdGetS",
        Probe::FwdGetM => "FwdGetM",
        Probe::Inv => "Inv",
        Probe::Recall => "Recall",
        Probe::Discovery(DiscoveryIntent::Share) => "Discovery(Share)",
        Probe::Discovery(DiscoveryIntent::Invalidate) => "Discovery(Invalidate)",
    }
}

/// Canonical label for a probe's *kind* with the discovery payload
/// ignored — the identifier that appears at an emit site in the home
/// decision source (`Probe::FwdGetS`, `Probe::Recall`, ...).
pub fn probe_base_label(p: Probe) -> &'static str {
    match p {
        Probe::FwdGetS => "FwdGetS",
        Probe::FwdGetM => "FwdGetM",
        Probe::Inv => "Inv",
        Probe::Recall => "Recall",
        Probe::Discovery(_) => "Discovery",
    }
}

/// Canonical label for a grant, matching the variant identifier.
pub fn grant_label(g: Grant) -> &'static str {
    match g {
        Grant::Shared => "Shared",
        Grant::Exclusive => "Exclusive",
        Grant::Modified => "Modified",
    }
}

/// Canonical label for a request, matching the variant identifier.
pub fn request_label(req: Request) -> &'static str {
    match req {
        Request::GetS => "GetS",
        Request::GetM => "GetM",
        Request::Upgrade => "Upgrade",
        Request::PutS => "PutS",
        Request::PutE => "PutE",
        Request::PutM => "PutM",
    }
}

/// Canonical label for a directory view's *kind* (payload ignored).
pub fn view_label(view: &DirView) -> &'static str {
    match view {
        DirView::Untracked => "Untracked",
        DirView::Exclusive(_) => "Exclusive",
        DirView::Shared(_) => "Shared",
    }
}

/// Canonical label for a memory operation kind.
pub fn op_label(op: MemOpKind) -> &'static str {
    match op {
        MemOpKind::Read => "Read",
        MemOpKind::Write => "Write",
    }
}

/// Messages the home emitted while handling one `(request, view-kind)`
/// pair, unioned over every abstract state in which the model exercised
/// the pair. Consumed by the lint waits-for pass to cross-check the
/// blocking edges it extracts from the home decision source.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HomeEmission {
    probes: BTreeSet<&'static str>,
    grants: BTreeSet<&'static str>,
}

impl HomeEmission {
    /// Probe kinds emitted, as base labels (see [`probe_base_label`]).
    pub fn probes(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.probes.iter().copied()
    }

    /// Grant kinds issued (see [`grant_label`]).
    pub fn grants(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.grants.iter().copied()
    }
}

/// The set of decision-layer transitions exercised by an exploration,
/// keyed by canonical labels (see [`state_label`] and friends).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransitionSet {
    /// `(PrivState, Probe)` pairs fed to [`probe`].
    probe: BTreeSet<(&'static str, &'static str)>,
    /// `(PrivState, MemOpKind)` pairs fed to [`local_access`].
    local: BTreeSet<(&'static str, &'static str)>,
    /// `(Request, DirView-kind)` pairs fed to [`decide`] / [`decide_put`].
    home: BTreeSet<(&'static str, &'static str)>,
    /// Messages emitted per `(Request, DirView-kind)` home pair.
    home_emits: BTreeMap<(&'static str, &'static str), HomeEmission>,
}

impl TransitionSet {
    /// An empty set.
    pub fn new() -> TransitionSet {
        TransitionSet::default()
    }

    /// Folds another set into this one.
    pub fn merge(&mut self, other: &TransitionSet) {
        self.probe.extend(other.probe.iter().copied());
        self.local.extend(other.local.iter().copied());
        self.home.extend(other.home.iter().copied());
        for (pair, emission) in &other.home_emits {
            let mine = self.home_emits.entry(*pair).or_default();
            mine.probes.extend(emission.probes.iter().copied());
            mine.grants.extend(emission.grants.iter().copied());
        }
    }

    /// The reachable `(state, probe)` label pairs, sorted.
    pub fn probe_pairs(&self) -> impl Iterator<Item = (&'static str, &'static str)> + '_ {
        self.probe.iter().copied()
    }

    /// The reachable `(state, op)` label pairs, sorted.
    pub fn local_pairs(&self) -> impl Iterator<Item = (&'static str, &'static str)> + '_ {
        self.local.iter().copied()
    }

    /// The reachable `(request, view-kind)` label pairs, sorted.
    pub fn home_pairs(&self) -> impl Iterator<Item = (&'static str, &'static str)> + '_ {
        self.home.iter().copied()
    }

    fn record_probe(&mut self, state: PrivState, p: Probe) {
        self.probe.insert((state_label(state), probe_label(p)));
    }

    fn record_local(&mut self, state: PrivState, op: MemOpKind) {
        self.local.insert((state_label(state), op_label(op)));
    }

    fn record_home(&mut self, req: Request, view: &DirView) {
        self.home.insert((request_label(req), view_label(view)));
    }

    /// Emissions recorded for each reachable `(request, view-kind)` home
    /// pair, in sorted order. Put pairs appear with empty emissions.
    pub fn home_emissions(
        &self,
    ) -> impl Iterator<Item = ((&'static str, &'static str), &HomeEmission)> + '_ {
        self.home_emits.iter().map(|(pair, e)| (*pair, e))
    }

    fn record_home_emission(
        &mut self,
        req: Request,
        view: &DirView,
        probes: &[(CoreId, Probe)],
        grant: Option<Grant>,
    ) {
        let e = self
            .home_emits
            .entry((request_label(req), view_label(view)))
            .or_default();
        for &(_, p) in probes {
            e.probes.insert(probe_base_label(p));
        }
        if let Some(g) = grant {
            e.grants.insert(grant_label(g));
        }
    }
}

/// Result of exploring one [`Mode`].
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Number of distinct abstract states reached.
    pub states: usize,
    /// Decision-layer transitions exercised along the way.
    pub transitions: TransitionSet,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CoreSt {
    state: PrivState,
    fresh: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum View {
    Untracked,
    Exclusive(usize),
    Shared(u8), // bitmask over N cores
}

impl View {
    fn to_dir_view(self) -> DirView {
        match self {
            View::Untracked => DirView::Untracked,
            View::Exclusive(c) => DirView::Exclusive(CoreId::new(c as u16)),
            View::Shared(mask) => {
                let mut set = SharerSet::new(N as u16);
                for c in 0..N {
                    if mask & (1 << c) != 0 {
                        set.insert(CoreId::new(c as u16));
                    }
                }
                DirView::Shared(set)
            }
        }
    }

    fn from_dir_view(view: &DirView) -> View {
        match view {
            DirView::Untracked => View::Untracked,
            DirView::Exclusive(c) => View::Exclusive(c.index()),
            DirView::Shared(set) => {
                let mut mask = 0u8;
                for c in set.iter() {
                    mask |= 1 << c.index();
                }
                View::Shared(mask)
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct St {
    cores: [CoreSt; N],
    view: View,
    stash: bool,
    llc_present: bool,
    llc_fresh: bool,
    dram_fresh: bool,
}

impl St {
    fn initial() -> St {
        St {
            cores: [CoreSt {
                state: PrivState::Invalid,
                fresh: false,
            }; N],
            view: View::Untracked,
            stash: false,
            llc_present: false,
            llc_fresh: true, // never written: everything "fresh"
            dram_fresh: true,
        }
    }

    fn holders(&self) -> Vec<usize> {
        (0..N)
            .filter(|&c| self.cores[c].state != PrivState::Invalid)
            .collect()
    }
}

fn grant_state(grant: Grant) -> PrivState {
    match grant {
        Grant::Shared => PrivState::Shared,
        Grant::Exclusive => PrivState::Exclusive,
        Grant::Modified => PrivState::Modified,
    }
}

/// `true` once any write has happened (freshness starts vacuous).
fn anyone_wrote(st: &St) -> bool {
    !st.dram_fresh || !st.llc_fresh || st.cores.iter().any(|c| c.fresh)
}

struct Explorer {
    mode: Mode,
    transitions: TransitionSet,
}

impl Explorer {
    /// Applies a probe to core `c`, updating freshness bookkeeping;
    /// returns whether the reply carried data, whether that data was
    /// fresh, and whether the copy was retained.
    fn apply_probe(&mut self, st: &mut St, c: usize, p: Probe) -> (bool, bool, bool) {
        self.transitions.record_probe(st.cores[c].state, p);
        let effect = probe(st.cores[c].state, p);
        let had_data = effect.reply.has_data();
        let was_fresh = st.cores[c].fresh;
        let dirty = st.cores[c].state == PrivState::Modified;
        st.cores[c].state = effect.next;
        if effect.next == PrivState::Invalid {
            st.cores[c].fresh = false;
        }
        if had_data && dirty {
            // Dirty data is written through to the LLC.
            st.llc_fresh = was_fresh;
        }
        (had_data, was_fresh, effect.next != PrivState::Invalid)
    }

    /// Ensures the LLC holds the block (fetching from memory).
    fn ensure_llc(&self, st: &mut St) {
        if !st.llc_present {
            st.llc_present = true;
            st.llc_fresh = st.dram_fresh;
        }
    }

    /// One atomic demand transaction. Returns the successor state,
    /// panicking on any protocol-rule violation along the way.
    fn demand(&mut self, mut st: St, c: usize, op: MemOpKind) -> St {
        let mode = self.mode;
        self.transitions.record_local(st.cores[c].state, op);
        let req = match local_access(st.cores[c].state, op) {
            AccessOutcome::Hit(next) => {
                // Local hit: must be reading/writing fresh data.
                assert!(st.cores[c].fresh || !anyone_wrote(&st), "stale local hit");
                st.cores[c].state = next;
                if op == MemOpKind::Write {
                    write_by(&mut st, c);
                }
                return st;
            }
            AccessOutcome::Miss(req) => req,
        };

        // Discovery phase.
        let mut view = st.view.to_dir_view();
        if mode.stash_dir && needs_discovery(&view, st.stash) {
            let intent = discovery_intent(req);
            let exclude = if req == Request::Upgrade {
                None
            } else {
                Some(c)
            };
            let mut found: Option<(usize, bool, bool)> = None;
            for t in 0..N {
                if Some(t) == exclude {
                    continue;
                }
                let before = st.cores[t].state;
                let (had_data, was_fresh, retained) =
                    self.apply_probe(&mut st, t, Probe::Discovery(intent));
                if before != PrivState::Invalid || had_data {
                    assert!(found.is_none(), "two hidden copies discovered");
                    if before != PrivState::Invalid {
                        found = Some((t, was_fresh, retained));
                    }
                }
            }
            st.stash = false;
            if let Some((owner, _, retained)) = found {
                if retained && st.cores[owner].state == PrivState::Shared {
                    view =
                        DirView::Shared(SharerSet::singleton(N as u16, CoreId::new(owner as u16)));
                }
            }
        }

        self.transitions.record_home(req, &view);
        let outcome = decide(req, CoreId::new(c as u16), &view, N as u16);
        self.transitions
            .record_home_emission(req, &view, &outcome.probes, Some(outcome.grant));

        // Probe phase.
        let mut data_from_owner: Option<bool> = None; // fresh?
        let mut owner_retained = false;
        let mut had_fwdgets = false;
        for &(target, p) in &outcome.probes {
            let t = target.index();
            let (had_data, was_fresh, retained) = self.apply_probe(&mut st, t, p);
            if had_data {
                data_from_owner = Some(was_fresh);
            }
            if p == Probe::FwdGetS {
                had_fwdgets = true;
                owner_retained = retained;
            }
        }

        // Data phase.
        let (granted_state, granted_fresh) = if outcome.needs_data {
            match data_from_owner {
                Some(fresh) => (grant_state(outcome.grant), fresh),
                None => {
                    self.ensure_llc(&mut st);
                    (grant_state(outcome.grant), st.llc_fresh)
                }
            }
        } else {
            (PrivState::Modified, st.cores[c].fresh)
        };

        // THE property: granted data is always fresh.
        assert!(
            granted_fresh || !anyone_wrote(&st),
            "stale grant to core {c} for {req} in mode {mode:?}"
        );

        st.cores[c].state = granted_state;
        st.cores[c].fresh = granted_fresh;
        self.ensure_llc(&mut st); // tracked blocks are LLC-resident

        // Directory update (reconciled like the simulator does).
        let mut new_view = outcome.new_view.clone();
        if had_fwdgets && !owner_retained {
            if let DirView::Shared(set) = &new_view {
                new_view =
                    DirView::Shared(SharerSet::singleton(set.capacity(), CoreId::new(c as u16)));
            }
        }
        st.view = View::from_dir_view(&new_view);
        st.stash = false;

        if op == MemOpKind::Write {
            write_by(&mut st, c);
        }
        st
    }

    /// Core `c` evicts its copy (atomic put processing at the home).
    fn evict_l2(&mut self, mut st: St, c: usize) -> Option<St> {
        let state = st.cores[c].state;
        if state == PrivState::Invalid {
            return None;
        }
        let req = match state {
            PrivState::Modified => Request::PutM,
            PrivState::Exclusive => Request::PutE,
            PrivState::Shared => Request::PutS,
            PrivState::Invalid => unreachable!(),
        };
        let was_fresh = st.cores[c].fresh;
        st.cores[c].state = PrivState::Invalid;
        st.cores[c].fresh = false;
        if req != Request::PutM && !self.mode.notify_clean {
            // Silent clean drop: the home never hears about it.
            return Some(st);
        }
        let view = st.view.to_dir_view();
        self.transitions.record_home(req, &view);
        self.transitions.record_home_emission(req, &view, &[], None);
        match decide_put(req, CoreId::new(c as u16), &view) {
            PutOutcome::Accept {
                new_view,
                writeback,
            } => {
                if writeback {
                    st.llc_fresh = was_fresh;
                }
                st.view = View::from_dir_view(&new_view);
            }
            PutOutcome::Stale => {
                // In atomic-transaction order a put is stale only for
                // hidden owners (untracked + stash): the simulator's claim
                // logic degenerates to "always unclaimed" here.
                if st.view == View::Untracked && st.stash {
                    if req == Request::PutM {
                        st.llc_fresh = was_fresh;
                    }
                    st.stash = false;
                }
            }
        }
        Some(st)
    }

    /// The directory evicts the block's entry.
    fn dir_evict(&mut self, mut st: St) -> Option<St> {
        let view = st.view.to_dir_view();
        if view == DirView::Untracked {
            return None;
        }
        if self.mode.stash_dir && view.is_private() {
            // The stash mechanism.
            st.view = View::Untracked;
            st.stash = true;
            return Some(st);
        }
        for holder in view.holders() {
            let p = if matches!(view, DirView::Exclusive(_)) {
                Probe::Recall
            } else {
                Probe::Inv
            };
            self.apply_probe(&mut st, holder.index(), p);
        }
        st.view = View::Untracked;
        Some(st)
    }

    /// The LLC evicts the line.
    fn llc_evict(&mut self, mut st: St) -> Option<St> {
        if !st.llc_present {
            return None;
        }
        let view = st.view.to_dir_view();
        if view != DirView::Untracked {
            for holder in view.holders() {
                let p = if matches!(view, DirView::Exclusive(_)) {
                    Probe::Recall
                } else {
                    Probe::Inv
                };
                self.apply_probe(&mut st, holder.index(), p);
            }
            st.view = View::Untracked;
        } else if self.mode.stash_dir && st.stash {
            for t in 0..N {
                self.apply_probe(&mut st, t, Probe::Discovery(DiscoveryIntent::Invalidate));
            }
            st.stash = false;
        }
        // Writeback to memory.
        st.dram_fresh = st.llc_fresh;
        st.llc_present = false;
        st.llc_fresh = false;
        Some(st)
    }

    /// Structural invariants checked at every reachable state.
    fn check_state(&self, st: &St) {
        let mode = self.mode;
        // Single writer.
        let exclusive: Vec<usize> = (0..N)
            .filter(|&c| st.cores[c].state.is_exclusive())
            .collect();
        assert!(exclusive.len() <= 1, "multiple E/M holders: {st:?}");
        if !exclusive.is_empty() {
            assert_eq!(st.holders().len(), 1, "E/M alongside other copies: {st:?}");
        }
        // Coverage: every valid copy tracked or hidden. (With silent clean
        // drops the view may list *more* cores, never fewer.)
        for c in st.holders() {
            let covered = match st.view {
                View::Untracked => false,
                View::Exclusive(o) => o == c,
                View::Shared(mask) => mask & (1 << c) != 0,
            };
            assert!(
                covered || (mode.stash_dir && st.stash),
                "uncovered copy at core {c}: {st:?}"
            );
        }
        // Tracked implies LLC-resident; stash bit implies resident +
        // untracked.
        if st.view != View::Untracked {
            assert!(st.llc_present, "tracked but not LLC-resident: {st:?}");
        }
        if st.stash {
            assert!(mode.stash_dir, "stash bit in sparse mode");
            assert!(st.llc_present, "stash bit without LLC line: {st:?}");
            assert_eq!(st.view, View::Untracked, "stash bit on tracked block");
        }
        // Fresh data is reachable.
        let reachable = st.dram_fresh
            || (st.llc_present && st.llc_fresh)
            || (0..N).any(|c| st.cores[c].state != PrivState::Invalid && st.cores[c].fresh);
        assert!(reachable, "lost write: {st:?}");
        // Valid copies are fresh (atomic transactions invalidate stale
        // copies synchronously).
        if anyone_wrote(st) {
            for c in st.holders() {
                assert!(st.cores[c].fresh, "stale valid copy at core {c}: {st:?}");
            }
        }
    }
}

/// After any write, exactly the writer holds fresh data.
fn write_by(st: &mut St, c: usize) {
    assert_eq!(st.cores[c].state, PrivState::Modified, "write without M");
    for t in 0..N {
        st.cores[t].fresh = t == c;
    }
    st.llc_fresh = false;
    st.dram_fresh = false;
}

/// Explores every reachable abstract state under `mode`, checking the
/// structural invariants at each and recording the decision-layer
/// transitions exercised.
///
/// # Panics
///
/// Panics if any reachable state violates a protocol invariant (single
/// writer, grant freshness, coverage, fresh-data reachability) — i.e. a
/// panic here is a protocol bug.
pub fn explore(mode: Mode) -> Exploration {
    let mut ex = Explorer {
        mode,
        transitions: TransitionSet::new(),
    };
    let mut seen: HashSet<St> = HashSet::new();
    let mut queue: VecDeque<St> = VecDeque::new();
    seen.insert(St::initial());
    queue.push_back(St::initial());
    while let Some(st) = queue.pop_front() {
        ex.check_state(&st);
        let mut succs: Vec<St> = Vec::new();
        for c in 0..N {
            succs.push(ex.demand(st, c, MemOpKind::Read));
            succs.push(ex.demand(st, c, MemOpKind::Write));
            succs.extend(ex.evict_l2(st, c));
        }
        succs.extend(ex.dir_evict(st));
        succs.extend(ex.llc_evict(st));
        for succ in succs {
            if seen.insert(succ) {
                queue.push_back(succ);
            }
        }
    }
    Exploration {
        states: seen.len(),
        transitions: ex.transitions,
    }
}

/// The union of transitions reachable under all four [`ALL_MODES`]: the
/// ground truth `stashdir-lint` diffs source match arms against.
pub fn reachable_transitions() -> TransitionSet {
    let mut all = TransitionSet::new();
    for mode in ALL_MODES {
        all.merge(&explore(mode).transitions);
    }
    all
}
