//! Exhaustive model checking of the protocol decision layer.
//!
//! The abstract machine, its invariants, and the BFS explorer live in
//! [`stashdir_protocol::reachability`] so the `stashdir-lint` pass can
//! reuse the reachable-transition set; these tests drive it across all
//! four modes and sanity-check both the state counts and the recorded
//! transition sets. Any invariant violation panics inside `explore`.

use stashdir_protocol::reachability::{explore, reachable_transitions, Mode, ALL_MODES};

#[test]
fn exhaustive_stash_with_notification() {
    let states = explore(Mode {
        stash_dir: true,
        notify_clean: true,
    })
    .states;
    assert!(states > 25, "explored only {states} states");
}

#[test]
fn exhaustive_stash_silent_clean_drops() {
    let states = explore(Mode {
        stash_dir: true,
        notify_clean: false,
    })
    .states;
    assert!(states > 25, "explored only {states} states");
}

#[test]
fn exhaustive_sparse_with_notification() {
    let states = explore(Mode {
        stash_dir: false,
        notify_clean: true,
    })
    .states;
    assert!(states > 20, "explored only {states} states");
}

#[test]
fn exhaustive_sparse_silent_clean_drops() {
    let states = explore(Mode {
        stash_dir: false,
        notify_clean: false,
    })
    .states;
    assert!(states > 20, "explored only {states} states");
}

#[test]
fn discovery_probes_reach_only_stash_modes() {
    for mode in ALL_MODES {
        let hit_discovery = explore(mode)
            .transitions
            .probe_pairs()
            .any(|(_, p)| p.starts_with("Discovery"));
        assert_eq!(
            hit_discovery, mode.stash_dir,
            "discovery reachability mismatch in {mode:?}"
        );
    }
}

#[test]
fn reachable_union_covers_core_transitions() {
    let all = reachable_transitions();
    let probes: Vec<_> = all.probe_pairs().collect();
    // Every demand forward/invalidation against a live owner must be
    // exercised, as must discovery against every hideable state.
    for pair in [
        ("Modified", "FwdGetS"),
        ("Exclusive", "FwdGetM"),
        ("Shared", "Inv"),
        ("Modified", "Recall"),
        ("Modified", "Discovery(Share)"),
        ("Shared", "Discovery(Invalidate)"),
        ("Invalid", "Discovery(Share)"),
    ] {
        assert!(probes.contains(&pair), "missing reachable probe {pair:?}");
    }
    let home: Vec<_> = all.home_pairs().collect();
    for pair in [
        ("GetS", "Untracked"),
        ("GetM", "Exclusive"),
        ("Upgrade", "Shared"),
        ("PutS", "Shared"),
        ("PutM", "Exclusive"),
        ("PutM", "Untracked"),
    ] {
        assert!(home.contains(&pair), "missing reachable home pair {pair:?}");
    }
    // All eight local-access pairs are trivially reachable.
    assert_eq!(all.local_pairs().count(), 8);
}
