//! Simulated time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in core clock cycles.
///
/// `Cycle` supports the arithmetic a discrete-event simulator needs:
/// adding a `u64` delay to a timestamp, and subtracting two timestamps to
/// get a `u64` duration. Timestamps cannot be added to each other, which
/// rules out a whole class of scheduling bugs.
///
/// # Examples
///
/// ```
/// use stashdir_common::Cycle;
/// let t = Cycle::ZERO + 10;
/// assert_eq!(t - Cycle::ZERO, 10);
/// assert_eq!((t + 5).get(), 15);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycle(u64);

impl Cycle {
    /// Time zero: the start of simulation.
    pub const ZERO: Cycle = Cycle(0);

    /// A timestamp later than any reachable simulation time; useful as a
    /// "never" sentinel for disabled periodic work.
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Creates a timestamp from a raw cycle count.
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Returns the raw cycle count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the later of two timestamps.
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Saturating duration since `earlier` (zero if `earlier` is later).
    pub const fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    fn add(self, delay: u64) -> Cycle {
        Cycle(self.0 + delay)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, delay: u64) {
        self.0 += delay;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;

    /// Duration between two timestamps.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: Cycle) -> u64 {
        self.0 - rhs.0
    }
}

impl Sum<u64> for Cycle {
    fn sum<I: Iterator<Item = u64>>(iter: I) -> Self {
        Cycle(iter.sum())
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cyc", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sub_are_inverse() {
        let t = Cycle::new(100);
        assert_eq!((t + 42) - t, 42);
    }

    #[test]
    fn max_picks_later() {
        assert_eq!(Cycle::new(3).max(Cycle::new(9)), Cycle::new(9));
        assert_eq!(Cycle::new(9).max(Cycle::new(3)), Cycle::new(9));
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        assert_eq!(Cycle::new(5).saturating_since(Cycle::new(9)), 0);
        assert_eq!(Cycle::new(9).saturating_since(Cycle::new(5)), 4);
    }

    #[test]
    fn add_assign_advances() {
        let mut t = Cycle::ZERO;
        t += 7;
        assert_eq!(t.get(), 7);
    }

    #[test]
    fn display_has_unit_suffix() {
        assert_eq!(Cycle::new(12).to_string(), "12cyc");
    }
}
