//! Deterministic pseudo-random number generation.
//!
//! Every stochastic choice in the workspace (random replacement, workload
//! generation, fuzz harnesses) draws from [`DetRng`], a small, fast,
//! seedable xoshiro256**-based generator. Simulation results are therefore
//! exactly reproducible from a seed, which the experiment harness relies on.

use serde::{Deserialize, Serialize};

/// A deterministic random number generator (xoshiro256**).
///
/// Not cryptographically secure; statistically solid and extremely fast,
/// which is what a simulator needs.
///
/// # Examples
///
/// ```
/// use stashdir_common::DetRng;
/// let mut a = DetRng::seed_from(42);
/// let mut b = DetRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed, expanded with SplitMix64.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        // xoshiro must not start from the all-zero state; SplitMix64 cannot
        // produce four zeros from any seed, but guard anyway.
        let s = if s == [0; 4] { [1, 2, 3, 4] } else { s };
        DetRng { s }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[0, bound)` using Lemire's
    /// multiply-shift reduction (slightly biased for astronomically large
    /// bounds, negligible here).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniformly distributed `usize` index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Forks an independent generator, advancing this one.
    ///
    /// Used to give each simulated core its own stream so adding a core
    /// does not perturb the streams of the others.
    pub fn fork(&mut self) -> DetRng {
        DetRng::seed_from(self.next_u64())
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from(7);
        let mut b = DetRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from(1);
        let mut b = DetRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = DetRng::seed_from(3);
        for bound in [1u64, 2, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_covers_small_range() {
        let mut rng = DetRng::seed_from(4);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::seed_from(5);
        assert!((0..100).all(|_| !rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = DetRng::seed_from(6);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = DetRng::seed_from(8);
        for _ in 0..1000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut root = DetRng::seed_from(9);
        let mut c1 = root.fork();
        let mut c2 = root.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn pick_returns_member() {
        let mut rng = DetRng::seed_from(10);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(rng.pick(&items)));
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_bound_panics() {
        DetRng::seed_from(0).below(0);
    }
}
