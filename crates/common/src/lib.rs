//! Common kernel for the `stashdir` workspace.
//!
//! This crate holds the vocabulary types shared by every other crate in the
//! Stash Directory reproduction: physical addresses and block addresses,
//! core/tile identifiers, simulated time, a deterministic RNG, compact
//! sharer sets, and a lightweight statistics registry.
//!
//! # Examples
//!
//! ```
//! use stashdir_common::{Addr, BlockAddr, BlockGeometry};
//!
//! let geom = BlockGeometry::new(64);
//! let a = Addr::new(0x1234);
//! let b = geom.block_of(a);
//! assert_eq!(b, BlockAddr::new(0x48)); // 0x1234 >> 6
//! assert_eq!(geom.base_addr(b), Addr::new(0x1200));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod cycles;
pub mod fsio;
pub mod fxhash;
pub mod ids;
pub mod json;
pub mod ops;
pub mod rng;
pub mod sharers;
pub mod stats;

pub use addr::{Addr, BlockAddr, BlockGeometry};
pub use cycles::Cycle;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{BankId, CoreId, NodeId};
pub use ops::{MemOp, MemOpKind};
pub use rng::DetRng;
pub use sharers::SharerSet;
pub use stats::{Counter, Histogram, StatId, StatSink};
