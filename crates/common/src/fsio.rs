//! Durable-write discipline for run artifacts: atomic writes via
//! write-to-temp + rename, and quarantine of corrupt files.
//!
//! A sweep killed mid-`fs::write` (power loss, OOM kill, ctrl-C at the
//! wrong instant) leaves a truncated manifest or case artifact; a later
//! `--resume` must neither trust it nor die on it. Writers here never
//! expose a partial file under the final name, and readers that find
//! garbage can set it aside (`<name>.corrupt`) so the case re-runs and
//! the evidence survives for inspection.

use std::io;
use std::path::{Path, PathBuf};

/// Writes `text` to `path` atomically: the bytes land in a sibling
/// temporary file first and are renamed over `path` only once fully
/// written, so a crash mid-write can never leave a truncated file under
/// the final name. Creates parent directories as needed.
///
/// # Errors
///
/// Returns any underlying I/O error; the temporary file is removed on a
/// failed rename.
pub fn write_atomic(path: &Path, text: &str) -> io::Result<()> {
    let parent = path
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("no parent directory for {}", path.display()),
            )
        })?;
    std::fs::create_dir_all(parent)?;
    let tmp = temp_sibling(path);
    std::fs::write(&tmp, text)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// The temporary sibling name for an atomic write of `path`; includes
/// the pid so concurrent writers in different processes cannot collide.
fn temp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".to_string());
    name.push_str(&format!(".tmp.{}", std::process::id()));
    path.with_file_name(name)
}

/// Sets a corrupt file aside as `<name>.corrupt` next to the original
/// (overwriting any previous quarantine of the same file) and returns
/// the quarantine path. The original no longer exists afterwards, so a
/// resume fsck that quarantines a truncated manifest or artifact will
/// re-run the affected cases.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn quarantine(path: &Path) -> io::Result<PathBuf> {
    let mut name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".to_string());
    name.push_str(".corrupt");
    let target = path.with_file_name(name);
    std::fs::rename(path, &target)?;
    Ok(target)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("stashdir_fsio_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_atomic_creates_parents_and_leaves_no_temp() {
        let dir = scratch("basic");
        let path = dir.join("nested/deeper/file.json");
        write_atomic(&path, "{\"ok\":true}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ok\":true}");
        let leftovers: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp file must not survive");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_atomic_replaces_existing_content() {
        let dir = scratch("replace");
        let path = dir.join("file.json");
        write_atomic(&path, "old").unwrap();
        write_atomic(&path, "new").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "new");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quarantine_renames_and_removes_original() {
        let dir = scratch("quarantine");
        let path = dir.join("manifest.json");
        std::fs::write(&path, "{\"trunca").unwrap();
        let q = quarantine(&path).unwrap();
        assert!(q.ends_with("manifest.json.corrupt"));
        assert!(!path.exists());
        assert_eq!(std::fs::read_to_string(&q).unwrap(), "{\"trunca");
        std::fs::remove_dir_all(&dir).ok();
    }
}
