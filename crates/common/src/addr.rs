//! Physical and block addresses.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A physical byte address in the simulated machine.
///
/// Newtype over `u64` so byte addresses and [`BlockAddr`]s cannot be mixed
/// up by accident.
///
/// # Examples
///
/// ```
/// use stashdir_common::Addr;
/// let a = Addr::new(0x1000);
/// assert_eq!(a.get(), 0x1000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte offset.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte offset.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the address advanced by `bytes`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on `u64` overflow.
    pub const fn offset(self, bytes: u64) -> Self {
        Addr(self.0 + bytes)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// A cache-block address: a byte address with the block-offset bits shifted
/// out. Coherence operates on block addresses exclusively.
///
/// # Examples
///
/// ```
/// use stashdir_common::BlockAddr;
/// let b = BlockAddr::new(7);
/// assert_eq!(b.get(), 7);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address from a raw block number.
    pub const fn new(raw: u64) -> Self {
        BlockAddr(raw)
    }

    /// Returns the raw block number.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the block advanced by `blocks`.
    pub const fn offset(self, blocks: u64) -> Self {
        BlockAddr(self.0 + blocks)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{:#x}", self.0)
    }
}

impl fmt::LowerHex for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for BlockAddr {
    fn from(raw: u64) -> Self {
        BlockAddr(raw)
    }
}

/// Conversion between byte addresses and block addresses for a fixed
/// power-of-two block size.
///
/// # Examples
///
/// ```
/// use stashdir_common::{Addr, BlockGeometry};
/// let geom = BlockGeometry::new(64);
/// assert_eq!(geom.block_of(Addr::new(128)).get(), 2);
/// assert_eq!(geom.block_bytes(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockGeometry {
    offset_bits: u32,
}

impl BlockGeometry {
    /// Creates a geometry for the given block size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is zero or not a power of two.
    pub fn new(block_bytes: u64) -> Self {
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two, got {block_bytes}"
        );
        BlockGeometry {
            offset_bits: block_bytes.trailing_zeros(),
        }
    }

    /// The block size in bytes.
    pub const fn block_bytes(self) -> u64 {
        1 << self.offset_bits
    }

    /// Number of block-offset bits.
    pub const fn offset_bits(self) -> u32 {
        self.offset_bits
    }

    /// Maps a byte address to the block containing it.
    pub const fn block_of(self, addr: Addr) -> BlockAddr {
        BlockAddr(addr.0 >> self.offset_bits)
    }

    /// Returns the first byte address of a block.
    pub const fn base_addr(self, block: BlockAddr) -> Addr {
        Addr(block.0 << self.offset_bits)
    }
}

impl Default for BlockGeometry {
    /// 64-byte blocks, the configuration used throughout the paper.
    fn default() -> Self {
        BlockGeometry::new(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_mapping_round_trips_to_base() {
        let geom = BlockGeometry::new(64);
        let addr = Addr::new(0x12345);
        let block = geom.block_of(addr);
        let base = geom.base_addr(block);
        assert!(base.get() <= addr.get());
        assert!(addr.get() < base.get() + geom.block_bytes());
    }

    #[test]
    fn same_block_for_all_offsets_within_it() {
        let geom = BlockGeometry::new(32);
        let base = Addr::new(0x40);
        let b0 = geom.block_of(base);
        for off in 0..32 {
            assert_eq!(geom.block_of(base.offset(off)), b0);
        }
        assert_ne!(geom.block_of(base.offset(32)), b0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_block_size_panics() {
        let _ = BlockGeometry::new(48);
    }

    #[test]
    fn display_formats_hex() {
        assert_eq!(Addr::new(255).to_string(), "0xff");
        assert_eq!(BlockAddr::new(255).to_string(), "B0xff");
        assert_eq!(format!("{:x}", Addr::new(255)), "ff");
    }

    #[test]
    fn addr_offset_advances() {
        assert_eq!(Addr::new(8).offset(8), Addr::new(16));
        assert_eq!(BlockAddr::new(1).offset(2), BlockAddr::new(3));
    }

    #[test]
    fn from_u64_conversions() {
        assert_eq!(Addr::from(9u64), Addr::new(9));
        assert_eq!(BlockAddr::from(9u64), BlockAddr::new(9));
    }

    #[test]
    fn default_geometry_is_64_bytes() {
        assert_eq!(BlockGeometry::default().block_bytes(), 64);
        assert_eq!(BlockGeometry::default().offset_bits(), 6);
    }
}
