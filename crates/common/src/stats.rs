//! Lightweight simulation statistics.
//!
//! Components own [`Counter`]s and [`Histogram`]s directly (no global
//! registry, no locks) and export them into a [`StatSink`] at the end of a
//! run, which the experiment harness serializes as rows.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use stashdir_common::Counter;
/// let mut c = Counter::default();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `i` holds samples in `[2^(i-1), 2^i)`, except bucket 0 which
/// holds exactly the value 0. Tracks count, sum, min and max exactly.
///
/// # Examples
///
/// ```
/// use stashdir_common::Histogram;
/// let mut h = Histogram::new();
/// for v in [1, 2, 3, 100] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.max(), Some(100));
/// assert!((h.mean().unwrap() - 26.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        };
        if bucket >= self.buckets.len() {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub const fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean, or `None` if no samples were recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Bucket populations; bucket `i` covers `[2^(i-1), 2^i)` (bucket 0 is
    /// the literal value 0).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`): the upper bound of the
    /// power-of-two bucket containing the `q`-th sample, so the true
    /// quantile is at most the returned value and at least half of it.
    /// `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(if i == 0 { 0 } else { (1u64 << i) - 1 });
            }
        }
        self.max()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

/// An interned statistic identifier: an index into a [`StatSink`]'s
/// value table, handed out once by [`StatSink::register`] and valid for
/// the sink that produced it (and for clones of that sink).
///
/// Hot paths bump stats through ids — one bounds-checked array access —
/// instead of hashing/comparing a `String` key per event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StatId(u32);

impl StatId {
    /// The raw table index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// An ordered name→value table of exported statistics.
///
/// Keys use dotted paths (`"llc.0.discoveries"`). Values are `f64` so
/// counters and derived ratios live in the same table.
///
/// Internally the sink is *interned*: each key is registered once into a
/// name table and its value lives in a dense `Vec<f64>` indexed by
/// [`StatId`], so the bump path ([`StatSink::bump`]) touches no strings
/// and allocates nothing. Names are only resolved at export time
/// ([`StatSink::iter`], [`StatSink::to_csv`]), which still yields
/// entries in sorted key order — the string-keyed API (`put`/`get`) is a
/// thin compatibility shim over registration, so artifact and CSV output
/// are unchanged from the `BTreeMap<String, f64>` era.
///
/// # Examples
///
/// ```
/// use stashdir_common::StatSink;
/// let mut sink = StatSink::new();
/// sink.put("dir.evictions", 10.0);
/// sink.put("dir.silent", 9.0);
/// assert_eq!(sink.get("dir.silent"), Some(9.0));
/// assert_eq!(sink.to_csv().lines().count(), 3); // header + 2 rows
///
/// // The interned hot path: register once, bump by id.
/// let id = sink.register("bank.events");
/// for _ in 0..3 {
///     sink.bump(id, 1.0);
/// }
/// assert_eq!(sink.get("bank.events"), Some(3.0));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StatSink {
    /// Interned key table, id-indexed (registration order).
    names: Vec<String>,
    /// Dense value table, id-indexed — the hot bump/set path.
    values: Vec<f64>,
    /// Sorted name→id index: compat lookups and key-ordered export.
    index: BTreeMap<String, u32>,
}

impl StatSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        StatSink::default()
    }

    /// Interns `key`, returning its id. Registering an unseen key
    /// creates its entry at `0.0`; re-registering returns the existing
    /// id. Call once at setup, then [`bump`]/[`set`] by id in the loop.
    ///
    /// [`bump`]: StatSink::bump
    /// [`set`]: StatSink::set
    pub fn register(&mut self, key: impl Into<String>) -> StatId {
        let key = key.into();
        if let Some(&id) = self.index.get(&key) {
            return StatId(id);
        }
        let id = self.names.len() as u32;
        self.names.push(key.clone());
        self.values.push(0.0);
        self.index.insert(key, id);
        StatId(id)
    }

    /// The id of an already-registered key.
    pub fn id_of(&self, key: &str) -> Option<StatId> {
        self.index.get(key).copied().map(StatId)
    }

    /// The name a [`StatId`] was registered under.
    ///
    /// # Panics
    ///
    /// Panics when `id` did not come from this sink (or a clone of it).
    pub fn name_of(&self, id: StatId) -> &str {
        &self.names[id.index()]
    }

    /// Adds `delta` to an interned stat: the allocation-free hot path.
    ///
    /// # Panics
    ///
    /// Panics when `id` did not come from this sink (or a clone of it).
    #[inline]
    pub fn bump(&mut self, id: StatId, delta: f64) {
        self.values[id.index()] += delta;
    }

    /// Overwrites an interned stat's value.
    ///
    /// # Panics
    ///
    /// Panics when `id` did not come from this sink (or a clone of it).
    #[inline]
    pub fn set(&mut self, id: StatId, value: f64) {
        self.values[id.index()] = value;
    }

    /// Reads an interned stat's value.
    ///
    /// # Panics
    ///
    /// Panics when `id` did not come from this sink (or a clone of it).
    #[inline]
    pub fn value(&self, id: StatId) -> f64 {
        self.values[id.index()]
    }

    /// Stores a value, replacing any previous value under `key` (compat
    /// shim over [`register`] + [`set`]).
    ///
    /// [`register`]: StatSink::register
    /// [`set`]: StatSink::set
    pub fn put(&mut self, key: impl Into<String>, value: f64) {
        let id = self.register(key);
        self.set(id, value);
    }

    /// Stores a counter under `key`.
    pub fn put_counter(&mut self, key: impl Into<String>, counter: Counter) {
        self.put(key, counter.get() as f64);
    }

    /// Fetches a value.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.index.get(key).map(|&id| self.values[id as usize])
    }

    /// Fetches a value, defaulting to zero when absent.
    pub fn get_or_zero(&self, key: &str) -> f64 {
        self.get(key).unwrap_or(0.0)
    }

    /// Iterates `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.index
            .iter()
            .map(|(k, &id)| (k.as_str(), self.values[id as usize]))
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` when nothing has been exported yet.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Merges another sink into this one, *adding* values key-wise:
    /// keys present in both sum, keys only in `other` are registered
    /// here first. This is the shard-combining primitive — per-thread or
    /// per-component shard sinks fold into one total, and
    /// shard-then-merge equals accumulating into a single sink.
    pub fn merge(&mut self, other: &StatSink) {
        for (name, &oid) in &other.index {
            let id = match self.index.get(name) {
                Some(&id) => id,
                None => {
                    let id = self.names.len() as u32;
                    self.names.push(name.clone());
                    self.values.push(0.0);
                    self.index.insert(name.clone(), id);
                    id
                }
            };
            self.values[id as usize] += other.values[oid as usize];
        }
    }

    /// Merges another sink, adding values for keys present in both
    /// (alias of [`StatSink::merge`], kept for source compatibility).
    pub fn merge_add(&mut self, other: &StatSink) {
        self.merge(other);
    }

    /// Renders `key,value` CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("stat,value\n");
        for (k, v) in self.iter() {
            out.push_str(k);
            out.push(',');
            out.push_str(&format_stat(v));
            out.push('\n');
        }
        out
    }
}

/// Logical equality: same key→value mapping, regardless of the interning
/// (registration) order the two sinks happened to use.
impl PartialEq for StatSink {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl fmt::Display for StatSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.iter() {
            writeln!(f, "{k:<48} {}", format_stat(v))?;
        }
        Ok(())
    }
}

impl Extend<(String, f64)> for StatSink {
    fn extend<T: IntoIterator<Item = (String, f64)>>(&mut self, iter: T) {
        for (k, v) in iter {
            self.put(k, v);
        }
    }
}

impl FromIterator<(String, f64)> for StatSink {
    fn from_iter<T: IntoIterator<Item = (String, f64)>>(iter: T) -> Self {
        let mut sink = StatSink::new();
        sink.extend(iter);
        sink
    }
}

fn format_stat(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let mut h = Histogram::new();
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(2); // bucket 2
        h.record(3); // bucket 2
        h.record(4); // bucket 3
        assert_eq!(h.buckets(), &[1, 1, 2, 1]);
    }

    #[test]
    fn histogram_summary_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        for v in [5, 10, 15] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 30);
        assert_eq!(h.mean(), Some(10.0));
        assert_eq!(h.min(), Some(5));
        assert_eq!(h.max(), Some(15));
    }

    #[test]
    fn quantiles_bound_the_samples() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!((500..=1023).contains(&p50), "p50 bucket bound, got {p50}");
        assert!((990..=1023).contains(&p99), "p99 bucket bound, got {p99}");
        assert!(p99 >= p50);
        assert_eq!(h.quantile(0.0), Some(1), "first bucket upper bound");
        assert_eq!(h.quantile(1.0), Some(1023));
    }

    #[test]
    fn quantile_of_empty_is_none() {
        assert_eq!(Histogram::new().quantile(0.5), None);
    }

    #[test]
    fn quantile_of_zeros() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.quantile(0.5), Some(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_rejects_bad_q() {
        Histogram::new().quantile(1.5);
    }

    #[test]
    fn histogram_merge_combines() {
        let mut a = Histogram::new();
        a.record(1);
        let mut b = Histogram::new();
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(1000));
    }

    #[test]
    fn histogram_merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        a.record(7);
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before);
    }

    #[test]
    fn sink_roundtrip_and_csv() {
        let mut sink = StatSink::new();
        sink.put("b", 2.5);
        sink.put("a", 1.0);
        assert_eq!(sink.get("a"), Some(1.0));
        assert_eq!(sink.get_or_zero("zzz"), 0.0);
        let csv = sink.to_csv();
        assert_eq!(csv, "stat,value\na,1\nb,2.500000\n");
    }

    #[test]
    fn sink_merge_add_sums_common_keys() {
        let mut a: StatSink = [("x".to_string(), 1.0)].into_iter().collect();
        let b: StatSink = [("x".to_string(), 2.0), ("y".to_string(), 3.0)]
            .into_iter()
            .collect();
        a.merge_add(&b);
        assert_eq!(a.get("x"), Some(3.0));
        assert_eq!(a.get("y"), Some(3.0));
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
    }

    #[test]
    fn interned_ids_are_stable_and_bumpable() {
        let mut sink = StatSink::new();
        let hits = sink.register("hits");
        let misses = sink.register("misses");
        assert_ne!(hits, misses);
        assert_eq!(sink.register("hits"), hits, "re-registering is idempotent");
        assert_eq!(sink.id_of("hits"), Some(hits));
        assert_eq!(sink.id_of("zzz"), None);
        assert_eq!(sink.name_of(misses), "misses");
        assert_eq!(sink.get("hits"), Some(0.0), "registered starts at zero");
        for _ in 0..5 {
            sink.bump(hits, 1.0);
        }
        sink.set(misses, 2.0);
        assert_eq!(sink.value(hits), 5.0);
        assert_eq!(sink.get("misses"), Some(2.0));
    }

    #[test]
    fn export_order_is_key_sorted_not_registration_order() {
        let mut sink = StatSink::new();
        sink.register("z.last");
        sink.register("a.first");
        sink.put("m.middle", 1.0);
        let keys: Vec<&str> = sink.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["a.first", "m.middle", "z.last"]);
        assert_eq!(
            sink.to_csv(),
            "stat,value\na.first,0\nm.middle,1\nz.last,0\n"
        );
    }

    #[test]
    fn equality_ignores_interning_order() {
        let mut a = StatSink::new();
        a.put("x", 1.0);
        a.put("y", 2.0);
        let mut b = StatSink::new();
        b.put("y", 2.0);
        b.put("x", 1.0);
        assert_eq!(a, b);
        b.put("x", 9.0);
        assert_ne!(a, b);
    }

    #[test]
    fn shard_then_merge_equals_single_sink() {
        // The sharding contract: splitting bumps across shard sinks and
        // merging gives the same table as one sink taking every bump.
        let mut single = StatSink::new();
        let mut shard_a = StatSink::new();
        let mut shard_b = StatSink::new();
        for (key, delta) in [("n.a", 1.0), ("n.b", 2.0), ("n.a", 3.0), ("n.c", 4.0)] {
            let id = single.register(key);
            single.bump(id, delta);
        }
        for (key, delta) in [("n.a", 1.0), ("n.c", 4.0)] {
            let id = shard_a.register(key);
            shard_a.bump(id, delta);
        }
        for (key, delta) in [("n.b", 2.0), ("n.a", 3.0)] {
            let id = shard_b.register(key);
            shard_b.bump(id, delta);
        }
        let mut merged = StatSink::new();
        merged.merge(&shard_a);
        merged.merge(&shard_b);
        assert_eq!(merged, single);
    }
}
