//! Compact sharer sets: which cores hold a copy of a block.
//!
//! Directory entries carry a full-map bit vector of sharers. The set is
//! backed by inline `u64` words sized at construction, so 16–64-core
//! configurations use a single word and larger meshes grow as needed.

use crate::ids::CoreId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of cores, implemented as a full-map bit vector.
///
/// # Examples
///
/// ```
/// use stashdir_common::{CoreId, SharerSet};
/// let mut s = SharerSet::new(16);
/// s.insert(CoreId::new(3));
/// s.insert(CoreId::new(7));
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(CoreId::new(3)));
/// assert_eq!(s.sole_member(), None); // two members, not private
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SharerSet {
    words: Vec<u64>,
    capacity: u16,
}

impl SharerSet {
    /// Creates an empty set able to hold cores `0..capacity`.
    pub fn new(capacity: u16) -> Self {
        let nwords = (capacity as usize).div_ceil(64).max(1);
        SharerSet {
            words: vec![0; nwords],
            capacity,
        }
    }

    /// Creates a set holding exactly one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is outside `0..capacity`.
    pub fn singleton(capacity: u16, core: CoreId) -> Self {
        let mut set = SharerSet::new(capacity);
        set.insert(core);
        set
    }

    /// The maximum number of distinct cores the set can hold.
    pub fn capacity(&self) -> u16 {
        self.capacity
    }

    fn slot(&self, core: CoreId) -> (usize, u64) {
        assert!(
            core.get() < self.capacity,
            "core {core} out of range (capacity {})",
            self.capacity
        );
        (core.index() / 64, 1u64 << (core.index() % 64))
    }

    /// Adds a core. Returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `core` is outside `0..capacity`.
    pub fn insert(&mut self, core: CoreId) -> bool {
        let (w, bit) = self.slot(core);
        let fresh = self.words[w] & bit == 0;
        self.words[w] |= bit;
        fresh
    }

    /// Removes a core. Returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `core` is outside `0..capacity`.
    pub fn remove(&mut self, core: CoreId) -> bool {
        let (w, bit) = self.slot(core);
        let present = self.words[w] & bit != 0;
        self.words[w] &= !bit;
        present
    }

    /// Tests membership.
    ///
    /// # Panics
    ///
    /// Panics if `core` is outside `0..capacity`.
    pub fn contains(&self, core: CoreId) -> bool {
        let (w, bit) = self.slot(core);
        self.words[w] & bit != 0
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when no core is a member.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// If exactly one core is a member, returns it. This is the *private
    /// block* test at the heart of the stash directory: entries whose
    /// sharer set has a sole member may be evicted silently.
    pub fn sole_member(&self) -> Option<CoreId> {
        if self.len() != 1 {
            return None;
        }
        self.iter().next()
    }

    /// Removes every member.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Iterates members in ascending core order.
    pub fn iter(&self) -> Iter<'_> {
        Iter { set: self, next: 0 }
    }

    /// Storage cost of the full-map vector in bits (one bit per trackable
    /// core), used by the directory area model.
    pub fn storage_bits(&self) -> u64 {
        self.capacity as u64
    }
}

impl fmt::Display for SharerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, core) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", core.get())?;
        }
        write!(f, "}}")
    }
}

impl<'a> IntoIterator for &'a SharerSet {
    type Item = CoreId;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl Extend<CoreId> for SharerSet {
    fn extend<T: IntoIterator<Item = CoreId>>(&mut self, iter: T) {
        for core in iter {
            self.insert(core);
        }
    }
}

/// Iterator over the members of a [`SharerSet`] in ascending order.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    set: &'a SharerSet,
    next: u32,
}

impl Iterator for Iter<'_> {
    type Item = CoreId;

    fn next(&mut self) -> Option<CoreId> {
        while (self.next as usize) < self.set.words.len() * 64 {
            let w = self.next as usize / 64;
            let rest = self.set.words[w] >> (self.next % 64);
            if rest == 0 {
                self.next = (w as u32 + 1) * 64;
                continue;
            }
            let found = self.next + rest.trailing_zeros();
            self.next = found + 1;
            return Some(CoreId::new(found as u16));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = SharerSet::new(16);
        assert!(s.insert(CoreId::new(5)));
        assert!(!s.insert(CoreId::new(5)), "double insert is not fresh");
        assert!(s.contains(CoreId::new(5)));
        assert!(s.remove(CoreId::new(5)));
        assert!(!s.remove(CoreId::new(5)), "double remove not present");
        assert!(s.is_empty());
    }

    #[test]
    fn sole_member_detects_private_blocks() {
        let mut s = SharerSet::new(16);
        assert_eq!(s.sole_member(), None);
        s.insert(CoreId::new(9));
        assert_eq!(s.sole_member(), Some(CoreId::new(9)));
        s.insert(CoreId::new(1));
        assert_eq!(s.sole_member(), None);
    }

    #[test]
    fn iter_ascending_across_word_boundary() {
        let mut s = SharerSet::new(130);
        for c in [0u16, 63, 64, 65, 127, 128, 129] {
            s.insert(CoreId::new(c));
        }
        let got: Vec<u16> = s.iter().map(CoreId::get).collect();
        assert_eq!(got, vec![0, 63, 64, 65, 127, 128, 129]);
        assert_eq!(s.len(), 7);
    }

    #[test]
    fn singleton_and_clear() {
        let mut s = SharerSet::singleton(8, CoreId::new(2));
        assert_eq!(s.len(), 1);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn extend_collects_cores() {
        let mut s = SharerSet::new(8);
        s.extend([CoreId::new(1), CoreId::new(3)]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn display_lists_members() {
        let mut s = SharerSet::new(8);
        s.insert(CoreId::new(1));
        s.insert(CoreId::new(4));
        assert_eq!(s.to_string(), "{1,4}");
        assert_eq!(SharerSet::new(8).to_string(), "{}");
    }

    #[test]
    fn storage_bits_equals_capacity() {
        assert_eq!(SharerSet::new(48).storage_bits(), 48);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_core_panics() {
        SharerSet::new(4).contains(CoreId::new(4));
    }
}
