//! Minimal, dependency-free JSON reading and writing.
//!
//! Every piece of structured I/O in the workspace — trace files, run
//! manifests, per-case report artifacts — goes through this module rather
//! than an external serializer, keeping the tree fully offline-buildable.
//!
//! Design points that matter to callers:
//!
//! * **Objects preserve insertion order** (`Vec<(String, Value)>`, not a
//!   map), so serializing the same data twice yields byte-identical text —
//!   the property the harness's parallel-vs-serial determinism tests rely
//!   on.
//! * **Numbers are `f64`**, written via Rust's shortest-roundtrip `{:?}`
//!   formatting; `u64` values up to 2^53 round-trip exactly, which covers
//!   every counter the simulator produces.
//! * The parser is a small recursive-descent reader accepting exactly the
//!   JSON this module writes (plus arbitrary whitespace); it rejects
//!   trailing garbage.
//!
//! # Examples
//!
//! ```
//! use stashdir_common::json::Value;
//!
//! let v = Value::object(vec![
//!     ("name".into(), Value::from("stash")),
//!     ("ways".into(), Value::from(4u64)),
//! ]);
//! let text = v.render();
//! assert_eq!(text, r#"{"name":"stash","ways":4}"#);
//! assert_eq!(Value::parse(&text).unwrap(), v);
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion-ordered, duplicate keys not deduplicated.
    Object(Vec<(String, Value)>),
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Number(v as f64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Number(v as f64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Number(v as f64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl Value {
    /// Builds an object from ordered key/value pairs.
    pub fn object(fields: Vec<(String, Value)>) -> Value {
        Value::Object(fields)
    }

    /// Builds an array.
    pub fn array(items: Vec<Value>) -> Value {
        Value::Array(items)
    }

    /// Looks up a field of an object (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64`, if a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as `&str`, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's items, if an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's fields, if an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serializes to compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes to human-readable JSON, two-space indented.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => write_number(*n, out),
            Value::String(s) => write_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Value::Object(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_string(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            _ => self.write(out),
        }
    }

    /// Parses a JSON document, rejecting trailing non-whitespace.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; the simulator never produces them, but a
        // stat that somehow does must not yield an unparseable document.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n:?}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: only produced for non-BMP
                            // chars, which this module never writes, but
                            // accept them for robustness.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid utf-8 in string"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Converts a string-keyed map into an ordered JSON object (sorted keys).
pub fn object_from_map(map: &BTreeMap<String, f64>) -> Value {
    Value::Object(
        map.iter()
            .map(|(k, v)| (k.clone(), Value::Number(*v)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "1e3", r#""hi""#] {
            let v = Value::parse(text).unwrap();
            let again = Value::parse(&v.render()).unwrap();
            assert_eq!(v, again, "{text}");
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Value::from(42u64).render(), "42");
        assert_eq!(Value::Number(-3.0).render(), "-3");
        assert_eq!(Value::Number(2.5).render(), "2.5");
        assert_eq!(Value::from(u64::from(u32::MAX)).render(), "4294967295");
    }

    #[test]
    fn large_counters_round_trip_exactly() {
        let big = (1u64 << 53) - 1;
        let v = Value::from(big);
        assert_eq!(Value::parse(&v.render()).unwrap().as_u64(), Some(big));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let nasty = "a\"b\\c\nd\te\u{0001}π";
        let v = Value::from(nasty);
        let text = v.render();
        assert_eq!(Value::parse(&text).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Value::object(vec![
            ("z".into(), Value::from(1u64)),
            ("a".into(), Value::from(2u64)),
        ]);
        assert_eq!(v.render(), r#"{"z":1,"a":2}"#);
        let parsed = Value::parse(&v.render()).unwrap();
        assert_eq!(parsed, v);
        assert_eq!(parsed.get("a").and_then(Value::as_u64), Some(2));
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Value::object(vec![
            (
                "cases".into(),
                Value::array(vec![
                    Value::object(vec![
                        ("id".into(), Value::from("stash-1_8")),
                        ("ok".into(), Value::from(true)),
                    ]),
                    Value::Null,
                ]),
            ),
            ("count".into(), Value::from(2u64)),
        ]);
        let pretty = v.render_pretty();
        assert_eq!(Value::parse(&pretty).unwrap(), v);
        assert_eq!(Value::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{\"a\":1} x").is_err());
        assert!(Value::parse("nul").is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Value::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").and_then(Value::as_array).unwrap().len(), 2);
    }

    #[test]
    fn map_helper_sorts_keys() {
        let mut m = BTreeMap::new();
        m.insert("b".to_string(), 2.0);
        m.insert("a".to_string(), 1.0);
        assert_eq!(object_from_map(&m).render(), r#"{"a":1,"b":2}"#);
    }
}
