//! Memory-operation trace records.
//!
//! Workload generators emit per-core sequences of [`MemOp`]s; the
//! simulator consumes them. Keeping the record here (rather than in the
//! protocol or simulator crates) lets trace tooling stay dependency-light.

use crate::addr::BlockAddr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a memory operation issued by a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemOpKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl fmt::Display for MemOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MemOpKind::Read => "R",
            MemOpKind::Write => "W",
        })
    }
}

/// One memory reference in a core's trace.
///
/// `think` models the non-memory instructions executed *before* this
/// reference: the core spends `think` cycles of local computation, then
/// issues the access. This is the standard trace-driven abstraction of an
/// in-order core with a fixed CPI for non-memory work.
///
/// # Examples
///
/// ```
/// use stashdir_common::{BlockAddr, MemOp, MemOpKind};
/// let op = MemOp::read(BlockAddr::new(42)).with_think(3);
/// assert_eq!(op.kind, MemOpKind::Read);
/// assert_eq!(op.think, 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemOp {
    /// Load or store.
    pub kind: MemOpKind,
    /// The block referenced.
    pub block: BlockAddr,
    /// Local compute cycles preceding the access.
    pub think: u32,
}

impl MemOp {
    /// A load of `block` with no preceding compute.
    pub const fn read(block: BlockAddr) -> Self {
        MemOp {
            kind: MemOpKind::Read,
            block,
            think: 0,
        }
    }

    /// A store to `block` with no preceding compute.
    pub const fn write(block: BlockAddr) -> Self {
        MemOp {
            kind: MemOpKind::Write,
            block,
            think: 0,
        }
    }

    /// Sets the preceding compute time.
    pub const fn with_think(mut self, think: u32) -> Self {
        self.think = think;
        self
    }

    /// `true` for stores.
    pub const fn is_write(&self) -> bool {
        matches!(self.kind, MemOpKind::Write)
    }
}

impl fmt::Display for MemOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.kind, self.block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        assert!(!MemOp::read(BlockAddr::new(1)).is_write());
        assert!(MemOp::write(BlockAddr::new(1)).is_write());
    }

    #[test]
    fn with_think_chains() {
        let op = MemOp::write(BlockAddr::new(2)).with_think(7);
        assert_eq!(op.think, 7);
        assert_eq!(op.block, BlockAddr::new(2));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(MemOp::read(BlockAddr::new(255)).to_string(), "RB0xff");
    }
}
