//! Identifiers for cores, LLC banks and NoC nodes.
//!
//! The simulated machine is a tiled CMP: tile *i* holds core *i*, LLC bank
//! *i* and NoC node *i*, so the three id spaces are isomorphic but kept as
//! distinct newtypes to prevent mixups (a directory slice indexed by a
//! [`CoreId`] is a bug the type system should catch).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(u16);

        impl $name {
            /// Creates an id from a raw index.
            pub const fn new(raw: u16) -> Self {
                $name(raw)
            }

            /// Returns the raw index.
            pub const fn get(self) -> u16 {
                self.0
            }

            /// Returns the raw index widened to `usize` for table lookups.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u16> for $name {
            fn from(raw: u16) -> Self {
                $name(raw)
            }
        }
    };
}

id_newtype!(
    /// Identifies one core (and its private cache hierarchy).
    ///
    /// # Examples
    ///
    /// ```
    /// use stashdir_common::CoreId;
    /// assert_eq!(CoreId::new(3).to_string(), "core3");
    /// ```
    CoreId,
    "core"
);

id_newtype!(
    /// Identifies one LLC bank / directory slice (the "home" of the blocks
    /// that map to it).
    ///
    /// # Examples
    ///
    /// ```
    /// use stashdir_common::BankId;
    /// assert_eq!(BankId::new(0).index(), 0);
    /// ```
    BankId,
    "bank"
);

id_newtype!(
    /// Identifies one router in the on-chip network.
    ///
    /// # Examples
    ///
    /// ```
    /// use stashdir_common::NodeId;
    /// assert_eq!(NodeId::new(15).get(), 15);
    /// ```
    NodeId,
    "node"
);

impl CoreId {
    /// The NoC node the core is attached to (tile-local mapping).
    pub const fn node(self) -> NodeId {
        NodeId(self.0)
    }
}

impl BankId {
    /// The NoC node the bank is attached to (tile-local mapping).
    pub const fn node(self) -> NodeId {
        NodeId(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(CoreId::new(7).to_string(), "core7");
        assert_eq!(BankId::new(7).to_string(), "bank7");
        assert_eq!(NodeId::new(7).to_string(), "node7");
    }

    #[test]
    fn tile_local_node_mapping() {
        assert_eq!(CoreId::new(5).node(), NodeId::new(5));
        assert_eq!(BankId::new(5).node(), NodeId::new(5));
    }

    #[test]
    fn ids_order_by_raw_index() {
        assert!(CoreId::new(1) < CoreId::new(2));
        assert_eq!(CoreId::from(4u16).index(), 4);
    }
}
