//! A fast, deterministic hasher for hot-path maps.
//!
//! The simulator's inner loop keys several maps by [`BlockAddr`]-like
//! small integers (per-block busy windows, pending writebacks, channel
//! FIFO clocks). `std`'s default SipHash is DoS-resistant but costs tens
//! of cycles per lookup and randomizes iteration order per map instance;
//! neither property is wanted inside a deterministic single-process
//! simulation. This module hand-rolls the FxHash multiply-xor scheme
//! (the rustc/Firefox hasher) with a fixed seed: a few cycles per word,
//! identical iteration order on every run.
//!
//! Never use these maps on untrusted external input — there is no
//! collision resistance by design.
//!
//! # Examples
//!
//! ```
//! use stashdir_common::fxhash::FxHashMap;
//!
//! let mut busy: FxHashMap<u64, u64> = FxHashMap::default();
//! busy.insert(42, 100);
//! assert_eq!(busy.get(&42), Some(&100));
//! ```
//!
//! [`BlockAddr`]: crate::BlockAddr

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The FxHash multiplication constant (64-bit golden-ratio mix, as used
/// by rustc's `FxHasher`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Bits to rotate the accumulator by before each mix.
const ROTATE: u32 = 5;

/// A `HashMap` keyed with [`FxHasher`] (deterministic, fast, not
/// DoS-resistant).
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasher` producing [`FxHasher`]s; zero-sized, fixed seed.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The word-at-a-time multiply-xor hasher.
///
/// Consumes input a `u64` word (or tail bytes) at a time:
/// `hash = (hash.rotate_left(5) ^ word) * SEED`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_instances() {
        // SipHash's RandomState would fail this between two maps; the
        // simulator relies on it for reproducible iteration order.
        assert_eq!(hash_of(&0xDEAD_BEEFu64), hash_of(&0xDEAD_BEEFu64));
        let a: u64 = FxBuildHasher::default().hash_one(1234u64);
        let b: u64 = FxBuildHasher::default().hash_one(1234u64);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_keys_spread() {
        // Sequential block addresses (the common key pattern) must not
        // collapse onto one bucket chain.
        let hashes: std::collections::HashSet<u64> = (0..1024u64).map(|k| hash_of(&k)).collect();
        assert_eq!(hashes.len(), 1024, "sequential keys all hash distinctly");
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(u16, u16), u64> = FxHashMap::default();
        for i in 0..100u16 {
            m.insert((i, i.wrapping_add(1)), i as u64 * 3);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&(7, 8)), Some(&21));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(9);
        assert!(s.contains(&9));
    }

    #[test]
    fn iteration_order_is_reproducible() {
        let build = || {
            let mut m: FxHashMap<u64, u64> = FxHashMap::default();
            for i in 0..256u64 {
                m.insert(i * 17, i);
            }
            m.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(build(), build(), "fixed seed fixes iteration order");
    }

    #[test]
    fn tail_bytes_are_hashed() {
        // &str hashing goes through write() with a non-multiple-of-8 tail.
        assert_ne!(hash_of(&"abc"), hash_of(&"abd"));
        assert_ne!(hash_of(&"abcdefgh1"), hash_of(&"abcdefgh2"));
    }
}
