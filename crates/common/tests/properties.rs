//! Property tests: `SharerSet` against a `HashSet` reference model, RNG
//! bounds, histogram accounting.

use proptest::prelude::*;
use stashdir_common::{CoreId, DetRng, Histogram, SharerSet};
use std::collections::HashSet;

#[derive(Debug, Clone)]
enum SetOp {
    Insert(u16),
    Remove(u16),
    Clear,
}

fn arb_ops(capacity: u16) -> impl Strategy<Value = Vec<SetOp>> {
    let op = prop_oneof![
        (0..capacity).prop_map(SetOp::Insert),
        (0..capacity).prop_map(SetOp::Remove),
        Just(SetOp::Clear),
    ];
    prop::collection::vec(op, 0..200)
}

proptest! {
    /// SharerSet behaves exactly like a HashSet<u16> under any op
    /// sequence, for capacities spanning one to several words.
    #[test]
    fn sharer_set_matches_hashset(
        capacity in prop::sample::select(vec![1u16, 7, 64, 65, 130]),
        ops in arb_ops(130),
    ) {
        let mut set = SharerSet::new(capacity);
        let mut model: HashSet<u16> = HashSet::new();
        for op in ops {
            match op {
                SetOp::Insert(c) if c < capacity => {
                    let fresh = set.insert(CoreId::new(c));
                    prop_assert_eq!(fresh, model.insert(c));
                }
                SetOp::Remove(c) if c < capacity => {
                    let present = set.remove(CoreId::new(c));
                    prop_assert_eq!(present, model.remove(&c));
                }
                SetOp::Clear => {
                    set.clear();
                    model.clear();
                }
                _ => {}
            }
            prop_assert_eq!(set.len(), model.len());
            prop_assert_eq!(set.is_empty(), model.is_empty());
            let mine: Vec<u16> = set.iter().map(CoreId::get).collect();
            let mut theirs: Vec<u16> = model.iter().copied().collect();
            theirs.sort_unstable();
            prop_assert_eq!(&mine, &theirs, "iteration is sorted and complete");
            let sole = set.sole_member().map(CoreId::get);
            let model_sole = (model.len() == 1).then(|| *model.iter().next().unwrap());
            prop_assert_eq!(sole, model_sole);
        }
    }

    /// `DetRng::below` stays in bounds and is seed-deterministic.
    #[test]
    fn rng_below_in_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut a = DetRng::seed_from(seed);
        let mut b = DetRng::seed_from(seed);
        for _ in 0..50 {
            let x = a.below(bound);
            prop_assert!(x < bound);
            prop_assert_eq!(x, b.below(bound));
        }
    }

    /// Histogram count/sum/min/max agree with direct computation, and
    /// merging partitions is equivalent to recording everything in one.
    #[test]
    fn histogram_matches_reference(values in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut whole = Histogram::new();
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 { left.record(v) } else { right.record(v) }
        }
        prop_assert_eq!(whole.count(), values.len() as u64);
        prop_assert_eq!(whole.sum(), values.iter().sum::<u64>());
        prop_assert_eq!(whole.min(), values.iter().min().copied());
        prop_assert_eq!(whole.max(), values.iter().max().copied());
        left.merge(&right);
        prop_assert_eq!(left, whole);
    }
}
