//! A microscope on the stash mechanism itself: drive a tiny machine so
//! that directory entries are silently dropped, then watch the hidden
//! copies get re-discovered.
//!
//! ```sh
//! cargo run --release --example hidden_blocks
//! ```

use stashdir::mem::{CacheConfig, ReplKind};
use stashdir::{BlockAddr, CoverageRatio, DirReplPolicy, DirSpec, Machine, MemOp, SystemConfig};

fn main() {
    // A 4-core machine with a deliberately starved stash directory so
    // hiding happens constantly.
    let config = SystemConfig {
        cores: 4,
        l1: CacheConfig::new(4 * 1024, 2, 64, 1, ReplKind::Lru),
        l2: CacheConfig::new(16 * 1024, 4, 64, 4, ReplKind::Lru),
        llc_bank: CacheConfig::new(64 * 1024, 8, 64, 12, ReplKind::Lru),
        dir: DirSpec::Stash {
            coverage: CoverageRatio::new(1, 16),
            assoc: 2,
            repl: DirReplPolicy::PrivateFirstLru,
        },
        ..SystemConfig::default()
    };

    // Phase 1: core 0 dirties a pile of private blocks (directory
    // entries will be hidden). Phase 2: core 1 reads them back —
    // every read of a hidden dirty block needs a discovery round.
    let blocks: Vec<BlockAddr> = (0..64).map(|i| BlockAddr::new(i * 4)).collect();
    let mut traces = vec![Vec::new(); 4];
    for &b in &blocks {
        traces[0].push(MemOp::write(b).with_think(2));
    }
    for &b in &blocks {
        traces[1].push(MemOp::read(b).with_think(20_000));
    }

    let report = Machine::new(config).run(traces);
    report.assert_clean();

    println!("stash mechanism event log (aggregated):\n");
    for (label, key) in [
        ("directory allocations", "dir.allocations"),
        ("silent (stash) evictions", "dir.silent_evictions"),
        ("invalidating evictions", "dir.invalidating_evictions"),
        ("copies invalidated", "dir.copies_invalidated"),
        ("demand discoveries", "bank.discoveries"),
        ("  ... that found the hidden copy", "bank.discoveries_found"),
        (
            "  ... that found nobody (stale bit)",
            "bank.discoveries_stale",
        ),
        ("LLC-eviction discoveries", "bank.evict_discoveries"),
        ("hidden writebacks accepted", "bank.hidden_writebacks"),
        ("discovery probe messages", "noc.messages.discovery"),
    ] {
        println!("{label:<38} {:>8}", report.stat(key));
    }
    println!(
        "\nEvery dirty block core 1 touched was untracked at the directory, \
         yet its data arrived intact: the run passed full value checking \
         ({} ops, {} cycles).",
        report.completed_ops, report.cycles
    );
}
