//! Build your own workload: hand-author per-core traces, persist them,
//! reload them, and run them against two directory configurations.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use stashdir::workloads::TraceFile;
use stashdir::{BlockAddr, CoverageRatio, DirSpec, Machine, MemOp, SystemConfig};

/// A hand-rolled "work stealing" pattern: a shared task queue block per
/// bank plus per-core task payloads.
fn build_traces(cores: u16, tasks_per_core: usize) -> Vec<Vec<MemOp>> {
    let queue_head = BlockAddr::new(8);
    (0..cores)
        .map(|c| {
            let mut ops = Vec::new();
            for t in 0..tasks_per_core {
                // Pop a task: RMW the shared queue head.
                ops.push(MemOp::read(queue_head).with_think(1));
                ops.push(MemOp::write(queue_head).with_think(1));
                // Process the task: stream over its private payload.
                let payload = 1_000_000 + (c as u64 * tasks_per_core as u64 + t as u64) * 8;
                for k in 0..8 {
                    ops.push(MemOp::read(BlockAddr::new(payload + k)).with_think(3));
                }
                ops.push(MemOp::write(BlockAddr::new(payload)).with_think(5));
            }
            ops
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cores = 16;
    let traces = build_traces(cores, 200);

    // Persist + reload: experiments stay bit-reproducible.
    let path = std::env::temp_dir().join("stashdir_custom_workload.json");
    TraceFile::new("work_stealing", 0, traces).save(&path)?;
    let loaded = TraceFile::load(&path)?;
    println!(
        "trace: {} ({} cores, {} ops) saved to {}\n",
        loaded.workload,
        loaded.cores(),
        loaded.total_ops(),
        path.display()
    );

    for (label, dir) in [
        ("sparse @ 1/8", DirSpec::sparse(CoverageRatio::new(1, 8))),
        ("stash  @ 1/8", DirSpec::stash(CoverageRatio::new(1, 8))),
    ] {
        let config = SystemConfig::default().with_dir(dir);
        let report = Machine::new(config).run(loaded.traces.clone());
        report.assert_clean();
        println!(
            "{label}: {} cycles, mean miss latency {:.1} cyc, {} invalidations",
            report.cycles,
            report.stat("core.mean_miss_latency"),
            report.stat("dir.copies_invalidated"),
        );
    }
    std::fs::remove_file(&path).ok();
    Ok(())
}
