//! Coverage sweep: how far can the directory shrink before performance
//! collapses? Reproduces the shape of the paper's headline figure on one
//! workload (run the full harness in `stashdir-bench` for all of them).
//!
//! ```sh
//! cargo run --release --example coverage_sweep [workload]
//! ```

use stashdir::{CoverageRatio, DirSpec, Machine, SystemConfig, Workload};

fn run(dir: DirSpec, workload: Workload, cores: u16) -> f64 {
    let config = SystemConfig::default().with_cores(cores).with_dir(dir);
    let traces = workload.generate(cores, 15_000, 7);
    let report = Machine::new(config).run(traces);
    report.assert_clean();
    report.cycles as f64
}

fn main() {
    let workload = std::env::args()
        .nth(1)
        .and_then(|n| Workload::from_name(&n))
        .unwrap_or(Workload::Fft);
    let cores = 16;
    println!("workload: {workload}, {cores} cores; execution time normalized to full-map\n");

    let ideal = run(DirSpec::FullMap, workload, cores);
    println!("{:>10} {:>12} {:>12}", "coverage", "sparse", "stash");
    for coverage in CoverageRatio::sweep() {
        let sparse = run(DirSpec::sparse(coverage), workload, cores) / ideal;
        let stash = run(DirSpec::stash(coverage), workload, cores) / ideal;
        println!(
            "{:>10} {:>11.3}x {:>11.3}x",
            coverage.to_string(),
            sparse,
            stash
        );
    }

    println!(
        "\nExpected shape: sparse degrades as coverage shrinks; \
         stash stays near 1.0x down to 1/8 and below."
    );
}
