//! Quickstart: simulate the paper's 16-core machine under three directory
//! organizations and compare what each one costs.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use stashdir::{CoverageRatio, DirSpec, Machine, SystemConfig, Workload};

fn main() {
    let eighth = CoverageRatio::new(1, 8);
    let organizations = [
        ("full-map (ideal)", DirSpec::FullMap),
        ("sparse @ 1/8", DirSpec::sparse(eighth)),
        ("stash  @ 1/8", DirSpec::stash(eighth)),
    ];

    // A private-streaming workload: the case the stash directory targets.
    let workload = Workload::DataParallel;
    println!("workload: {workload}, 16 cores x 20k ops\n");
    println!(
        "{:<18} {:>12} {:>10} {:>12} {:>12} {:>12}",
        "directory", "cycles", "vs ideal", "invalidated", "silent", "discoveries"
    );

    let mut baseline = None;
    for (label, dir) in organizations {
        let config = SystemConfig::default().with_dir(dir);
        let traces = workload.generate(config.cores, 20_000, 42);
        let report = Machine::new(config).run(traces);
        report.assert_clean();

        let base = *baseline.get_or_insert(report.cycles);
        println!(
            "{:<18} {:>12} {:>9.3}x {:>12} {:>12} {:>12}",
            label,
            report.cycles,
            report.cycles as f64 / base as f64,
            report.stat("dir.copies_invalidated"),
            report.stat("dir.silent_evictions"),
            report.stat("bank.discoveries"),
        );
    }

    println!(
        "\nThe stash directory at 1/8 coverage tracks the ideal while the \
         conventional sparse directory pays thousands of forced invalidations."
    );
}
