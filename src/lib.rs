//! # stashdir
//!
//! A from-scratch Rust reproduction of **"Stash Directory: A Scalable
//! Directory for Many-core Coherence"** (Demetriades & Cho, HPCA 2014),
//! including the full tiled-CMP simulation substrate the evaluation
//! needs: a MESI directory protocol, private two-level cache hierarchies,
//! a banked inclusive LLC, a mesh NoC, a DRAM model, and a synthetic
//! multi-threaded workload suite.
//!
//! ## The idea in one paragraph
//!
//! Sparse coherence directories must invalidate every cached copy of a
//! block whose tracking entry they evict. The **stash directory** relaxes
//! that inclusion requirement for *private* blocks (cached by exactly one
//! core): their entries are dropped silently, a **stash bit** on the
//! block's LLC line remembers that a *hidden* copy may exist, and a
//! **discovery** broadcast re-locates the copy in the rare case someone
//! else asks for it. Since most blocks are private and hidden copies are
//! almost never re-requested by other cores, a stash directory with 1/8
//! the entries of a conventional sparse directory matches its
//! performance — the paper's headline claim, reproduced by this
//! repository's experiment harness (see `EXPERIMENTS.md`).
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `stashdir-core` | The directory-backend registry ([`backends`]) and organizations: [`StashDirectory`], [`SparseDirectory`], [`FullMapDirectory`], [`CuckooDirectory`], [`DlsDirectory`], [`OpaqueDirectory`] |
//! | [`sim`] | `stashdir-sim` | The machine: [`Machine`], [`SystemConfig`], invariant checker |
//! | [`protocol`] | `stashdir-protocol` | MESI states, messages, home decision logic |
//! | [`workloads`] | `stashdir-workloads` | The twelve-workload suite: [`Workload`] |
//! | [`mem`] | `stashdir-mem` | Set-associative arrays, replacement policies, DRAM |
//! | [`noc`] | `stashdir-noc` | Mesh network model |
//! | [`common`] | `stashdir-common` | Addresses, ids, RNG, stats |
//!
//! ## Quickstart
//!
//! ```
//! use stashdir::{CoverageRatio, DirSpec, Machine, SystemConfig, Workload};
//!
//! // The paper's 16-core machine with a stash directory at 1/8 coverage.
//! let config = SystemConfig::default().with_dir(DirSpec::stash(CoverageRatio::new(1, 8)));
//! let traces = Workload::DataParallel.generate(16, 2_000, 42);
//! let report = Machine::new(config).run(traces);
//! report.assert_clean(); // full coherence + consistency checking
//! println!(
//!     "{} cycles, {} silent evictions, {} discoveries",
//!     report.cycles,
//!     report.stat("dir.silent_evictions"),
//!     report.stat("bank.discoveries"),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use stashdir_common as common;
pub use stashdir_core as core;
pub use stashdir_mem as mem;
pub use stashdir_noc as noc;
pub use stashdir_protocol as protocol;
pub use stashdir_sim as sim;
pub use stashdir_workloads as workloads;

pub use stashdir_common::{Addr, BlockAddr, CoreId, Cycle, MemOp, MemOpKind, StatSink};
pub use stashdir_core::{
    backends, BackendInfo, CostParams, CuckooDirectory, DirConfig, DirReplPolicy, DirectoryModel,
    DlsDirectory, EnergyCounts, EnergyModel, EvictionAction, FullMapDirectory, OpaqueDirectory,
    SharerFormat, SparseDirectory, StashDirectory,
};
pub use stashdir_sim::{
    expected_detector, CoverageRatio, Detector, DirSpec, FaultBurst, FaultClass, FaultConfig,
    FaultPlan, FaultSummary, Machine, SimReport, SystemConfig, TransitionHits, TAXONOMY,
};
pub use stashdir_workloads::{Characterization, Workload};
