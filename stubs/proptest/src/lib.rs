//! Offline mini-implementation of [proptest](https://crates.io/crates/proptest).
//!
//! The workspace's property tests use a small, stable slice of the real
//! proptest API: integer-range and tuple strategies, `prop_map`,
//! `prop::collection::{vec, hash_set}`, `prop::bool::ANY`,
//! `prop::sample::select`, `any::<T>()`, `Just`, `prop_oneof!`, the
//! `proptest!` macro and `prop_assert!`/`prop_assert_eq!`. This stub
//! implements exactly that slice on `std` alone so tests run without
//! network access.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its sampled inputs via the
//!   assertion message only.
//! * **Deterministic seeding.** Each test derives its RNG seed from the
//!   test's name, so failures reproduce exactly across runs.
//! * **No failure persistence files.**

#![forbid(unsafe_code)]

use std::collections::HashSet;
use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator (SplitMix64) driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds deterministically from a test name.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h | 1 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice among boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must be positive and the arm list non-empty.
    ///
    /// # Panics
    ///
    /// Panics on an empty arm list or a zero weight.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! of nothing");
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights must be positive");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut r = rng.below(self.total);
        for (w, s) in &self.arms {
            if r < *w as u64 {
                return s.sample(rng);
            }
            r -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty)*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8 u16 u32 u64 usize);

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a full-range default strategy.
pub trait Arbitrary: Sized {
    /// Samples an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty)*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------------
// Collection / bool / sample strategies (the `prop::` modules)
// ---------------------------------------------------------------------------

/// A collection size specification: an exact size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize, // exclusive; min == max means "exactly min"
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.max <= self.min {
            self.min
        } else {
            self.min + rng.below((self.max - self.min) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

/// `Vec` and `HashSet` strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Strategy for `Vec<S::Value>` with a size drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors of `elem` samples.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>`.
    pub struct HashSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates hash sets of `elem` samples; element generation retries
    /// until the target size is reached (bounded, so sparse domains cannot
    /// hang the test).
    pub fn hash_set<S>(elem: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = HashSet::new();
            let mut tries = 0usize;
            while out.len() < target && tries < target.saturating_mul(100) + 100 {
                out.insert(self.elem.sample(rng));
                tries += 1;
            }
            out
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// The type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// Uniform `true`/`false`.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }
}

/// Sampling from explicit value lists.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy returned by [`select`].
    pub struct Select<T: Clone>(Vec<T>);

    /// Picks uniformly from a non-empty list.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select of nothing");
        Select(items)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

// ---------------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------------

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property assertion (from `prop_assert!`/`prop_assert_eq!`).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

// Re-exported so `prop::collection::hash_set` results can be asserted
// against reference models without extra imports in this crate's tests.
#[doc(hidden)]
pub type __HashSet<T> = HashSet<T>;

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}: `{:?}` != `{:?}`",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Weighted or uniform choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( (($weight) as u32, $crate::Strategy::boxed($strategy)) ),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( (1u32, $crate::Strategy::boxed($strategy)) ),+
        ])
    };
}

/// Declares property tests: each `fn` runs its body over `cases` random
/// samples of its argument strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $( let $arg = $crate::Strategy::sample(&($strategy), &mut rng); )+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (5u64..17).sample(&mut rng);
            assert!((5..17).contains(&v));
        }
    }

    #[test]
    fn union_honors_weights_loosely() {
        let mut rng = TestRng::deterministic("union");
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let trues = (0..1000).filter(|_| s.sample(&mut rng)).count();
        assert!(trues > 700, "weighted arm should dominate, got {trues}");
    }

    #[test]
    fn vec_and_set_sizes() {
        let mut rng = TestRng::deterministic("sizes");
        for _ in 0..200 {
            let v = prop::collection::vec(0u64..10, 3..6).sample(&mut rng);
            assert!((3..6).contains(&v.len()));
            let s = prop::collection::hash_set(0u64..100, 4..8).sample(&mut rng);
            assert!((4..8).contains(&s.len()));
        }
    }

    #[test]
    fn tuples_and_map_compose() {
        let mut rng = TestRng::deterministic("tuples");
        let s = (0u64..4, 0u16..3).prop_map(|(a, b)| a + b as u64);
        for _ in 0..100 {
            assert!(s.sample(&mut rng) < 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(x in 0u64..100, flip in prop::bool::ANY) {
            prop_assert!(x < 100);
            prop_assert_eq!(flip, flip, "flip {}", flip);
        }
    }
}

/// The glob-importable prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, Just, ProptestConfig, Strategy, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// The `prop::` module namespace (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
    }
}
