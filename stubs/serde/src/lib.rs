//! Offline stub of `serde`.
//!
//! Provides just enough surface for this workspace to compile without
//! network access: the `Serialize`/`Deserialize` *names* (as marker traits
//! with blanket impls) and the derive macros (re-exported no-ops from the
//! stub `serde_derive`). All actual serialization in the workspace goes
//! through the hand-rolled, std-only `stashdir_common::json` module, so
//! nothing ever calls into these traits.
//!
//! If real `serde` is ever wanted again, point the `[workspace.dependencies]`
//! entry back at crates.io — every `#[derive(Serialize, Deserialize)]` in the
//! tree is attribute-free and compatible with the real derive.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`. Blanket-implemented for every
/// type so bounds like `T: Serialize` keep compiling.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`. Blanket-implemented for every
/// sized type so bounds like `T: Deserialize<'de>` keep compiling.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub mod de {
    /// Blanket-implemented owned-deserialization marker.
    pub trait DeserializeOwned: Sized {}
    impl<T> DeserializeOwned for T {}
}

#[cfg(test)]
mod tests {
    use super::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize)]
    struct Demo {
        _field: u64,
    }

    #[test]
    fn derives_expand_to_nothing() {
        let d = Demo { _field: 7 };
        let _ = d;
        fn takes_ser<T: Serialize>(_: &T) {}
        takes_ser(&1u32);
    }
}
