//! Offline stub of `serde_derive`.
//!
//! The real `serde` derive macros generate `Serialize`/`Deserialize` trait
//! impls. In this workspace the derives are purely decorative — nothing
//! bounds on the serde traits (all JSON I/O goes through
//! `stashdir_common::json`) — so the stub derives expand to nothing. This
//! keeps every `#[derive(Serialize, Deserialize)]` in the tree compiling
//! without network access or vendored sources.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
