//! Offline mini-implementation of [criterion](https://crates.io/crates/criterion).
//!
//! Implements only the API surface the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, throughput, bench_function,
//! bench_with_input, finish}`, `BenchmarkId`, `Throughput`, and
//! `Bencher::iter` — so `cargo bench` runs without network access.
//!
//! Measurement is intentionally simple: a short warm-up, then timed batches
//! until a small time budget is spent, reporting mean ns/iter (and element
//! throughput when declared) to stdout. It is a smoke-run harness, not a
//! statistics engine; swap back to real criterion for publishable numbers.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement budget per benchmark.
const TIME_BUDGET: Duration = Duration::from_millis(200);

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`group/id` in output).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a function name plus a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f` over repeated calls until the budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..3 {
            std::hint::black_box(f());
        }
        let budget_start = Instant::now();
        while budget_start.elapsed() < TIME_BUDGET {
            let start = Instant::now();
            std::hint::black_box(f());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes runs by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&self.name, &id.id, self.throughput, |b| f(b));
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.id, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The top-level bench context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", name, None, |b| f(b));
        self
    }
}

fn run_one(group: &str, id: &str, throughput: Option<Throughput>, mut f: impl FnMut(&mut Bencher)) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let mut bencher = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("bench {label:<40} (no iterations recorded)");
        return;
    }
    let ns_per_iter = bencher.total.as_nanos() as f64 / bencher.iters as f64;
    match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 * 1e9 / ns_per_iter;
            println!(
                "bench {label:<40} {ns_per_iter:>14.1} ns/iter  {per_sec:>14.0} elem/s  ({} iters)",
                bencher.iters
            );
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 * 1e9 / ns_per_iter;
            println!(
                "bench {label:<40} {ns_per_iter:>14.1} ns/iter  {per_sec:>14.0} B/s  ({} iters)",
                bencher.iters
            );
        }
        None => {
            println!(
                "bench {label:<40} {ns_per_iter:>14.1} ns/iter  ({} iters)",
                bencher.iters
            );
        }
    }
}

/// Declares a bench group function invoking each target with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given bench groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .throughput(Throughput::Elements(4))
            .bench_function(BenchmarkId::from_parameter("add"), |b| {
                b.iter(|| std::hint::black_box(2u64 + 2))
            });
        group.finish();
    }
}
