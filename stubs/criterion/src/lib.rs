//! Offline mini-implementation of [criterion](https://crates.io/crates/criterion).
//!
//! Implements only the API surface the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, throughput, bench_function,
//! bench_with_input, finish}`, `BenchmarkId`, `Throughput`, and
//! `Bencher::iter` — so `cargo bench` runs without network access.
//!
//! Measurement is intentionally simple: a short warm-up and calibration,
//! then timed batches until a small time budget is spent, reporting mean
//! and median ns/iter (and element throughput when declared) to stdout.
//! Results are also recorded on the [`Criterion`] context
//! ([`Criterion::results`]) so bench harnesses can post-process them —
//! the repo's `hotpath` bench gate serializes them to
//! `BENCH_sim_hotpath.json` and diffs against a committed baseline. It
//! is a smoke-run harness, not a statistics engine; swap back to real
//! criterion for publishable numbers.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement budget per benchmark.
const TIME_BUDGET: Duration = Duration::from_millis(200);

/// Target wall-clock per timed batch: long enough to amortize the
/// `Instant::now()` overhead for nanosecond-scale bodies, short enough
/// to leave hundreds of samples in the budget for a stable median.
const BATCH_TARGET_NS: f64 = 100_000.0;

/// One benchmark's recorded measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name (empty for ungrouped benchmarks).
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Mean ns per iteration over the whole run.
    pub mean_ns: f64,
    /// Median of the per-batch ns/iter samples.
    pub median_ns: f64,
    /// Total iterations timed.
    pub iters: u64,
}

impl BenchResult {
    /// `group/id`, or just `id` when ungrouped.
    pub fn label(&self) -> String {
        if self.group.is_empty() {
            self.id.clone()
        } else {
            format!("{}/{}", self.group, self.id)
        }
    }
}

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`group/id` in output).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a function name plus a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    total: Duration,
    iters: u64,
    /// ns/iter of each timed batch (the median source).
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `f` in calibrated batches until the budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up doubles as calibration: size batches so one batch
        // costs roughly `BATCH_TARGET_NS` and `Instant::now()` noise
        // stays out of the per-iteration signal.
        let warmup = Instant::now();
        for _ in 0..3 {
            std::hint::black_box(f());
        }
        let est_ns = (warmup.elapsed().as_nanos() as f64 / 3.0).max(1.0);
        let batch = (BATCH_TARGET_NS / est_ns).clamp(1.0, 1_000_000.0) as u64;
        let budget_start = Instant::now();
        while budget_start.elapsed() < TIME_BUDGET {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let spent = start.elapsed();
            self.total += spent;
            self.iters += batch;
            self.samples.push(spent.as_nanos() as f64 / batch as f64);
        }
    }
}

/// Median of `samples` (mean of the middle pair for even lengths).
fn median(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty());
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes runs by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let result = run_one(&self.name, &id.id, self.throughput, |b| f(b));
        self.criterion.record(result);
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let result = run_one(&self.name, &id.id, self.throughput, |b| f(b, input));
        self.criterion.record(result);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The top-level bench context.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let result = run_one("", name, None, |b| f(b));
        self.record(result);
        self
    }

    /// Every measurement recorded so far, in run order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    fn record(&mut self, result: Option<BenchResult>) {
        if let Some(r) = result {
            self.results.push(r);
        }
    }
}

fn run_one(
    group: &str,
    id: &str,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) -> Option<BenchResult> {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let mut bencher = Bencher {
        total: Duration::ZERO,
        iters: 0,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("bench {label:<40} (no iterations recorded)");
        return None;
    }
    let mean_ns = bencher.total.as_nanos() as f64 / bencher.iters as f64;
    let median_ns = median(&mut bencher.samples);
    match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 * 1e9 / median_ns;
            println!(
                "bench {label:<40} {median_ns:>12.1} ns/iter (median)  {per_sec:>14.0} elem/s  ({} iters)",
                bencher.iters
            );
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 * 1e9 / median_ns;
            println!(
                "bench {label:<40} {median_ns:>12.1} ns/iter (median)  {per_sec:>14.0} B/s  ({} iters)",
                bencher.iters
            );
        }
        None => {
            println!(
                "bench {label:<40} {median_ns:>12.1} ns/iter (median)  ({} iters)",
                bencher.iters
            );
        }
    }
    Some(BenchResult {
        group: group.to_string(),
        id: id.to_string(),
        mean_ns,
        median_ns,
        iters: bencher.iters,
    })
}

/// Declares a bench group function invoking each target with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given bench groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .throughput(Throughput::Elements(4))
            .bench_function(BenchmarkId::from_parameter("add"), |b| {
                b.iter(|| std::hint::black_box(2u64 + 2))
            });
        group.finish();
        let results = c.results();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].label(), "smoke/add");
        assert!(results[0].iters > 0);
        assert!(results[0].median_ns > 0.0);
        assert!(results[0].mean_ns > 0.0);
    }

    #[test]
    fn median_of_odd_and_even_sample_counts() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut [7.0]), 7.0);
    }

    #[test]
    fn ungrouped_results_are_recorded() {
        let mut c = Criterion::default();
        c.bench_function("solo", |b| b.iter(|| std::hint::black_box(1u64 + 1)));
        assert_eq!(c.results().len(), 1);
        assert_eq!(c.results()[0].label(), "solo");
    }
}
