#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
# The build is fully offline — every external dependency is vendored as a
# minimal stub under stubs/ (see stubs/README.md) — so this runs on a
# clean checkout with no registry access.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --offline -- -D warnings

# Protocol-aware static analysis: transition-matrix coverage against the
# model checker, waits-for liveness, panic hygiene in hot crates,
# artifact determinism, and stat registration. Prints per-pass timings,
# writes results/lint/transition_matrix.json (v1) and
# results/lint/protocol_model.json (v2), plus the machine-readable
# findings list, and fails on any finding. The v2 model is then checked
# under the v1-compat reader so old artifact consumers keep working.
echo "== stashdir-lint"
cargo run -q -p stashdir-lint --offline -- --root . \
  --json results/lint/findings.json
echo "== stashdir-lint --verify-v1"
cargo run -q -p stashdir-lint --offline -- \
  --verify-v1 results/lint/protocol_model.json

# Chaos smoke (E17): one injected fault per taxonomy class on a small
# grid; the run fails unless every class is caught by its expected
# detector (invariant checker or liveness watchdog) — the end-to-end
# mutation gate for the fault-injection layer.
echo "== chaos smoke (E17)"
chaos_out=$(cargo run -q -p stashdir-harness --offline --bin sweep -- \
  --plan chaos_smoke --run ci_chaos --ops 400 --no-progress)
echo "$chaos_out" | grep -qF \
  "chaos gate: 7/7 fault classes caught by their expected detector — PASS" \
  || { echo "chaos smoke FAILED:"; echo "$chaos_out"; exit 1; }

# Shoot-out smoke (E18): the equal-area backend comparison end to end at
# a reduced op count, from a scratch cwd so the committed full-scale
# results/e18_shootout.csv is not clobbered. Passes when the sweep
# completes and the CSV carries every registered backend.
echo "== shoot-out smoke (E18)"
repo_root=$(pwd)
e18_dir=$(mktemp -d)
(cd "$e18_dir" && cargo run -q --manifest-path "$repo_root/Cargo.toml" \
  -p stashdir-harness --offline --bin sweep -- \
  --plan shootout --run ci_shootout --ops 300 --no-progress >/dev/null)
e18_backends=$(tail -n +2 "$e18_dir/results/e18_shootout.csv" | cut -d, -f2 | sort -u)
e18_count=$(echo "$e18_backends" | wc -l)
[[ "$e18_count" -ge 6 ]] \
  || { echo "E18 smoke FAILED: only $e18_count backends in CSV:"; echo "$e18_backends"; exit 1; }
rm -rf "$e18_dir"

# XL-scaling smoke (E20): one budgeted 256-core point through the
# struct-of-arrays sim core, from a scratch cwd so the committed
# full-scale results/e20_scaling_xl.csv is not clobbered. Passes when
# the sweep completes and the CSV carries all four core counts (the
# 128-1024 rows assemble even when only the smoke ops ran).
echo "== XL-scaling smoke (E20)"
e20_dir=$(mktemp -d)
(cd "$e20_dir" && cargo run -q --manifest-path "$repo_root/Cargo.toml" \
  -p stashdir-harness --offline --bin sweep -- \
  --plan scaling_xl --run ci_scaling_xl --ops 40 --no-progress >/dev/null)
e20_rows=$(tail -n +2 "$e20_dir/results/e20_scaling_xl.csv" | cut -d, -f2 | sort -un)
[[ "$e20_rows" == $'128\n256\n512\n1024' ]] \
  || { echo "E20 smoke FAILED: core counts in CSV:"; echo "$e20_rows"; exit 1; }
rm -rf "$e20_dir"

# Chaos campaign smoke (E19): a short budgeted coverage-guided campaign
# from a scratch cwd against the freshly written protocol model. Passes
# when composing fault classes pairwise still catches all 7 (the E17
# property under composition), when the campaign strictly beats the
# single-fault coverage floor, and when the emitted coverage artifact
# verifies under the lint schema checker.
echo "== chaos campaign smoke (E19)"
e19_dir=$(mktemp -d)
e19_out=$(cd "$e19_dir" && cargo run -q --manifest-path "$repo_root/Cargo.toml" \
  -p stashdir-harness --offline --bin campaign -- \
  --model "$repo_root/results/lint/protocol_model.json" \
  --ops 400 --rounds 2 --plateau 1 --no-progress)
echo "$e19_out" | grep -qF \
  "pairwise gate: 7/7 fault classes caught when composed — PASS" \
  || { echo "E19 smoke FAILED (pairwise gate):"; echo "$e19_out"; exit 1; }
echo "$e19_out" | grep -qE \
  "coverage gate: campaign witnessed [0-9]+/[0-9]+ reachable transitions \(single-fault baseline [0-9]+\) — PASS" \
  || { echo "E19 smoke FAILED (coverage gate):"; echo "$e19_out"; exit 1; }
echo "== stashdir-lint --verify-coverage"
cargo run -q -p stashdir-lint --offline -- \
  --verify-coverage "$e19_dir/results/campaign/coverage.json"
rm -rf "$e19_dir"

echo "== cargo test -q --offline"
cargo test -q --workspace --offline

# Hot-path benchmark gate (opt-in: STASHDIR_BENCH=1). Compares the
# microbench medians against the committed BENCH_sim_hotpath.json and
# fails on >10% regression; also re-asserts the ≥20% event-dispatch /
# stat-bump improvement. Off by default so CI stays fast and immune to
# shared-host timing noise; refresh the baseline with
#   cargo bench -p stashdir-bench --bench hotpath -- --record
if [[ "${STASHDIR_BENCH:-0}" == "1" ]]; then
  echo "== bench gate (hotpath --check)"
  cargo bench -q -p stashdir-bench --bench hotpath --offline -- --check
fi

echo "CI OK"
