#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
# The build is fully offline — every external dependency is vendored as a
# minimal stub under stubs/ (see stubs/README.md) — so this runs on a
# clean checkout with no registry access.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --offline -- -D warnings

# Protocol-aware static analysis: transition-matrix coverage against the
# model checker, panic hygiene in hot crates, stat registration. Writes
# results/lint/transition_matrix.json and fails on any finding.
echo "== stashdir-lint"
cargo run -q -p stashdir-lint --offline -- --root .

echo "== cargo test -q --offline"
cargo test -q --workspace --offline

echo "CI OK"
